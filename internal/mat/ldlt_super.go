package mat

import (
	"fmt"
	"slices"
)

// Supernodal LDLᵀ: dense-panel storage and blocked kernels.
//
// The RC-network Laplacians factor into an L whose columns come in long
// runs with near-identical structure. AnalyzeLDL amalgamates those runs
// into supernodes — maximal column ranges sharing one (padded) row set —
// and this file stores L as one contiguous column-major dense panel per
// supernode, replacing the scalar column-at-a-time kernels with blocked
// ones:
//
//   - Factorize becomes left-looking over supernodes: scatter the A
//     entries into the panel, subtract one dense rank-k Schur update per
//     descendant supernode, then run a small dense LDLᵀ on the panel.
//   - The forward solve gathers each supernode's cross-panel
//     contributions from its descendants' panels (contiguous column
//     segments) and finishes with a dense unit-lower triangular solve on
//     the diagonal block; the backward solve is the transposed pass.
//
// The win over the scalar path is locality: the per-entry row-index
// traffic of the scalar sweeps is amortized across a panel's width, and
// every inner loop runs over contiguous float64 slices.
//
// Relaxed amalgamation pads panels with entries outside the scalar fill
// pattern. Padded slots are structural zeros: every term that could flow
// into one has at least one exactly-zero factor, so by induction they
// stay ±0 through the numeric factorization and the blocked kernels
// compute the same values the scalar kernels do up to floating-point
// reassociation (the property tests pin ≤1e-9 relative on L/D).
//
// Determinism: each supernode's kernel runs a fixed loop nest, serial and
// parallel paths share the same per-supernode functions, and the parallel
// schedule only chunks whole supernodes within elimination-tree levels —
// so results are bit-identical at any worker count and run-to-run, and
// SolveBatch reproduces sequential supernodal Solve bit-for-bit.

const (
	// maxSuperWidth caps a supernode's column count: wider panels
	// amortize index traffic further but waste a w²/2 dead triangle and
	// grow the dense-update scratch quadratically.
	maxSuperWidth = 48
	// Relaxed amalgamation: a child merges into its parent when the
	// merged width stays within a tier and the padded fraction of the
	// merged panel stays below that tier's bound (small panels tolerate
	// more padding — the per-column overhead they avoid is larger).
	relaxWidth1, relaxPad1 = 8, 0.50
	relaxWidth2, relaxPad2 = 16, 0.30
	relaxPad3              = 0.15
	// supernodalMinN and supernodalMinMeanWidth gate the automatic mode
	// pick: below either bound the scalar kernels win (or the difference
	// is noise) and flipping modes would churn small-system results for
	// nothing.
	supernodalMinN         = 4096
	supernodalMinMeanWidth = 1.8
)

// superState is the supernode partition and its padded structure —
// immutable once built, shared by Clone like the rest of the symbolic
// analysis.
type superState struct {
	nsn   int
	snPtr []int32 // len nsn+1; supernode s covers permuted columns snPtr[s]..snPtr[s+1]
	snOf  []int32 // len n; column → supernode

	// Padded row structure: supernode s's rows are
	// rows[rowPtr[s]:rowPtr[s+1]], ascending; the first width(s) entries
	// are the supernode's own columns, the rest its below-diagonal rows.
	rowPtr []int32
	rows   []int32

	// panelPtr[s] is the offset of s's dense panel in LDLNumeric.lx; the
	// panel is nr×w column-major (column stride nr), entries above the
	// diagonal dead.
	panelPtr []int

	// Update lists: the descendants whose below-diagonal rows intersect
	// s's columns, ascending. Descendant updSn[u]'s row-list positions
	// updLo[u]..updHi[u] fall inside s's columns; positions updHi[u]..nr
	// are strictly below them (all contained in s's row set — the
	// closure pass guarantees it).
	updPtr []int32
	updSn  []int32
	updLo  []int32
	updHi  []int32

	// A-entry scatter: panel slot aOff[e] of supernode s takes
	// a.Val[aSrc[e]] for e in aPtr[s]..aPtr[s+1].
	aPtr []int32
	aOff []int32
	aSrc []int32

	// Level schedule over supernodes (longest descendant path in the
	// supernodal elimination tree), same shape as the column-level one.
	lvlPtr  []int32
	lvlNode []int32

	maxNr    int // widest panel row count (scratch sizing)
	maxW     int // widest panel column count
	panelNNZ int // total stored panel floats (incl. padding + dead triangle)
	padNNZ   int // structurally-zero padded entries in the lower trapezoids
}

// buildSupernodes computes the supernode partition and its padded
// structure from the finished scalar analysis (parent, per-column counts
// in lnz, and the full pattern lp/li). AnalyzeLDL runs it once with the
// production bounds; tests rebuild with maxW=1/relax=false to pin the
// degenerate partition against the scalar path.
func (s *LDLSymbolic) buildSupernodes(maxW int, relax bool) {
	n := s.n
	if n == 0 {
		return
	}
	sp := &superState{}
	s.super = sp

	// --- Fundamental supernodes, split at maxSuperWidth. Column j
	// extends the run when its struct is the run's struct shifted by one:
	// parent[j-1] == j and |struct(j-1)| == |struct(j)|+1.
	starts := make([]int32, 0, n/2+1)
	width := 0
	for j := 0; j < n; j++ {
		if j == 0 || width == maxW ||
			s.parent[j-1] != j || s.lnz[j-1] != s.lnz[j]+1 {
			starts = append(starts, int32(j))
			width = 1
		} else {
			width++
		}
	}
	starts = append(starts, int32(n))

	// --- Relaxed amalgamation: greedy forward merge of a run into the
	// next piece when the next piece starts exactly at the run's first
	// below-diagonal row (making it the run's supernodal parent, so the
	// merged row set is cols ∪ rows(next) by etree containment) and the
	// padding stays within the width-tiered bounds.
	//
	// Per piece: width w, struct entries Σ(lnz[j]+1), below-row count
	// b = lnz[c0] − (w−1), first below row li[lp[c0]+w−1].
	merged := make([]int32, 0, len(starts))
	i := 0
	for i < len(starts)-1 {
		c0 := int(starts[i])
		w := int(starts[i+1]) - c0
		entries := 0
		for j := c0; j < c0+w; j++ {
			entries += s.lnz[j] + 1
		}
		b := s.lnz[c0] - (w - 1)
		minB := -1
		if b > 0 {
			minB = int(s.li[s.lp[c0]+w-1])
		}
		merged = append(merged, int32(c0))
		i++
		for relax && i < len(starts)-1 && minB == int(starts[i]) {
			nc0 := int(starts[i])
			nw := int(starts[i+1]) - nc0
			if w+nw > maxW {
				break
			}
			nEntries := 0
			for j := nc0; j < nc0+nw; j++ {
				nEntries += s.lnz[j] + 1
			}
			nb := s.lnz[nc0] - (nw - 1)
			mw := w + nw
			nr := mw + nb
			stored := mw*nr - mw*(mw-1)/2
			pad := float64(stored-entries-nEntries) / float64(stored)
			ok := pad == 0 ||
				(mw <= relaxWidth1 && pad <= relaxPad1) ||
				(mw <= relaxWidth2 && pad <= relaxPad2) ||
				pad <= relaxPad3
			if !ok {
				break
			}
			w, entries, b = mw, entries+nEntries, nb
			minB = -1
			if nb > 0 {
				minB = int(s.li[s.lp[nc0]+nw-1])
			}
			i++
		}
	}
	merged = append(merged, int32(n))

	nsn := len(merged) - 1
	sp.nsn = nsn
	sp.snPtr = merged
	sp.snOf = make([]int32, n)
	for sn := 0; sn < nsn; sn++ {
		for j := merged[sn]; j < merged[sn+1]; j++ {
			sp.snOf[j] = int32(sn)
		}
	}

	// --- Padded row structure (closure pass, ascending): a supernode's
	// below rows are the union of its member columns' scalar patterns
	// and its supernodal children's below rows, restricted past its own
	// columns. The union closure is what makes every descendant update
	// land inside the ancestor's row set (scatter via a plain row map,
	// no search).
	sp.rowPtr = make([]int32, nsn+1)
	sp.rows = make([]int32, 0, s.lp[n]+n)
	snParent := make([]int32, nsn)
	childHead := make([]int32, nsn)
	childNext := make([]int32, nsn)
	for sn := range childHead {
		childHead[sn] = -1
	}
	mark := make([]int32, n)
	for r := range mark {
		mark[r] = -1
	}
	var below []int32
	for sn := 0; sn < nsn; sn++ {
		c0, c1 := int(merged[sn]), int(merged[sn+1])
		below = below[:0]
		for j := c0; j < c1; j++ {
			for p := s.lp[j]; p < s.lp[j+1]; p++ {
				r := s.li[p]
				if int(r) < c1 {
					continue
				}
				if mark[r] != int32(sn) {
					mark[r] = int32(sn)
					below = append(below, r)
				}
			}
		}
		for d := childHead[sn]; d >= 0; d = childNext[d] {
			wd := int(sp.snPtr[d+1] - sp.snPtr[d])
			for p := int(sp.rowPtr[d]) + wd; p < int(sp.rowPtr[d+1]); p++ {
				r := sp.rows[p]
				if int(r) < c1 {
					continue
				}
				if mark[r] != int32(sn) {
					mark[r] = int32(sn)
					below = append(below, r)
				}
			}
		}
		slices.Sort(below)
		for j := c0; j < c1; j++ {
			sp.rows = append(sp.rows, int32(j))
		}
		sp.rows = append(sp.rows, below...)
		sp.rowPtr[sn+1] = int32(len(sp.rows))
		snParent[sn] = -1
		if len(below) > 0 {
			p := sp.snOf[below[0]]
			snParent[sn] = p
			childNext[sn] = childHead[p]
			childHead[p] = int32(sn)
		}
	}

	// --- Panel offsets and size/padding diagnostics.
	sp.panelPtr = make([]int, nsn+1)
	lowerStored := 0
	for sn := 0; sn < nsn; sn++ {
		w := int(merged[sn+1] - merged[sn])
		nr := int(sp.rowPtr[sn+1] - sp.rowPtr[sn])
		sp.panelPtr[sn+1] = sp.panelPtr[sn] + nr*w
		lowerStored += w*nr - w*(w-1)/2
		if nr > sp.maxNr {
			sp.maxNr = nr
		}
		if w > sp.maxW {
			sp.maxW = w
		}
	}
	sp.panelNNZ = sp.panelPtr[nsn]
	sp.padNNZ = lowerStored - (s.lp[n] + n)

	// --- Update lists: segment each supernode's below rows by owning
	// supernode (contiguous, rows ascending). Iterating descendants
	// ascending keeps each target's list in ascending-descendant order —
	// the fixed summation order of the blocked kernels.
	cnt := make([]int32, nsn+1)
	for d := 0; d < nsn; d++ {
		wd := int(merged[d+1] - merged[d])
		p := int(sp.rowPtr[d]) + wd
		end := int(sp.rowPtr[d+1])
		for p < end {
			t := sp.snOf[sp.rows[p]]
			cnt[t+1]++
			c1t := int(merged[t+1])
			for p < end && int(sp.rows[p]) < c1t {
				p++
			}
		}
	}
	sp.updPtr = make([]int32, nsn+1)
	for sn := 0; sn < nsn; sn++ {
		cnt[sn+1] += cnt[sn]
		sp.updPtr[sn+1] = cnt[sn+1]
	}
	nUpd := int(sp.updPtr[nsn])
	sp.updSn = make([]int32, nUpd)
	sp.updLo = make([]int32, nUpd)
	sp.updHi = make([]int32, nUpd)
	next := make([]int32, nsn)
	copy(next, sp.updPtr[:nsn])
	for d := 0; d < nsn; d++ {
		wd := int(merged[d+1] - merged[d])
		base := int(sp.rowPtr[d])
		p := base + wd
		end := int(sp.rowPtr[d+1])
		for p < end {
			t := sp.snOf[sp.rows[p]]
			lo := p
			c1t := int(merged[t+1])
			for p < end && int(sp.rows[p]) < c1t {
				p++
			}
			u := next[t]
			next[t]++
			sp.updSn[u] = int32(d)
			sp.updLo[u] = int32(lo - base)
			sp.updHi[u] = int32(p - base)
		}
	}

	// --- A-entry scatter lists. Upper-triangle entry (i=ci[p], k) is
	// lower entry (row k, col i): bucket by owning supernode, then
	// resolve panel offsets with a per-supernode row map.
	nnzU := s.cp[n]
	for sn := range cnt {
		cnt[sn] = 0
	}
	for k := 0; k < n; k++ {
		for p := s.cp[k]; p < s.cp[k+1]; p++ {
			cnt[sp.snOf[s.ci[p]]+1]++
		}
	}
	sp.aPtr = make([]int32, nsn+1)
	for sn := 0; sn < nsn; sn++ {
		cnt[sn+1] += cnt[sn]
		sp.aPtr[sn+1] = cnt[sn+1]
	}
	sp.aOff = make([]int32, nnzU)
	sp.aSrc = make([]int32, nnzU)
	tmpRow := make([]int32, nnzU)
	tmpCol := make([]int32, nnzU)
	copy(next, sp.aPtr[:nsn])
	for k := 0; k < n; k++ {
		for p := s.cp[k]; p < s.cp[k+1]; p++ {
			i := s.ci[p]
			e := next[sp.snOf[i]]
			next[sp.snOf[i]]++
			tmpRow[e] = int32(k)
			tmpCol[e] = int32(i)
			sp.aSrc[e] = int32(s.csrc[p])
		}
	}
	for sn := 0; sn < nsn; sn++ {
		c0 := int(merged[sn])
		r0 := int(sp.rowPtr[sn])
		nr := int(sp.rowPtr[sn+1]) - r0
		for a := 0; a < nr; a++ {
			mark[sp.rows[r0+a]] = int32(a)
		}
		for e := sp.aPtr[sn]; e < sp.aPtr[sn+1]; e++ {
			sp.aOff[e] = mark[tmpRow[e]] + (tmpCol[e]-int32(c0))*int32(nr)
		}
	}

	// --- Level schedule over the supernodal elimination tree.
	lev := make([]int32, nsn)
	maxLev := int32(0)
	for sn := 0; sn < nsn; sn++ {
		if p := snParent[sn]; p >= 0 && lev[sn]+1 > lev[p] {
			lev[p] = lev[sn] + 1
		}
		if lev[sn] > maxLev {
			maxLev = lev[sn]
		}
	}
	sp.lvlPtr = make([]int32, maxLev+2)
	for sn := 0; sn < nsn; sn++ {
		sp.lvlPtr[lev[sn]+1]++
	}
	for l := 0; l < len(sp.lvlPtr)-1; l++ {
		sp.lvlPtr[l+1] += sp.lvlPtr[l]
	}
	sp.lvlNode = make([]int32, nsn)
	nxt := make([]int32, maxLev+1)
	for sn := 0; sn < nsn; sn++ {
		l := lev[sn]
		sp.lvlNode[sp.lvlPtr[l]+nxt[l]] = int32(sn)
		nxt[l]++
	}
}

// SetSupernodal selects the dense-panel kernels (true) or the scalar
// column kernels (false) for this symbolic object's Factorize/Solve/
// SolveBatch. AnalyzeLDL defaults the mode through SupernodalProfitable;
// clones inherit the setting. Switching modes re-lays-out the numeric
// factor on the next Factorize (a reused LDLNumeric is reallocated once).
func (s *LDLSymbolic) SetSupernodal(on bool) {
	s.superOn = on && s.super != nil
}

// Supernodal reports whether the dense-panel kernels are selected.
func (s *LDLSymbolic) Supernodal() bool { return s.superOn }

// Supernodes returns the supernode count of the partition (0 before
// analysis).
func (s *LDLSymbolic) Supernodes() int {
	if s.super == nil {
		return 0
	}
	return s.super.nsn
}

// MeanPanelWidth returns the mean supernode width n/nsn — the factor by
// which the panel kernels amortize the scalar path's per-entry index
// traffic (1.0 = no amalgamation; 0 before analysis).
func (s *LDLSymbolic) MeanPanelWidth() float64 {
	if s.super == nil || s.super.nsn == 0 {
		return 0
	}
	return float64(s.n) / float64(s.super.nsn)
}

// PanelNNZ returns the stored float count of the supernodal L layout
// (scalar fill plus amalgamation padding plus the dead upper triangles).
func (s *LDLSymbolic) PanelNNZ() int {
	if s.super == nil {
		return 0
	}
	return s.super.panelNNZ
}

// SupernodalProfitable reports whether the partition is worth the panel
// kernels: the system is large enough to be sweep-bound and the mean
// panel width amortizes enough index traffic to beat the scalar path.
// AnalyzeLDL uses this to default the mode; callers force either path
// with SetSupernodal.
func (s *LDLSymbolic) SupernodalProfitable() bool {
	return s.super != nil && s.n >= supernodalMinN &&
		s.MeanPanelWidth() >= supernodalMinMeanWidth
}

// ensureSuperSolveScratch sizes the serial supernodal solve scratch
// (amortized: grown once, then the per-tick path allocates nothing).
func (s *LDLSymbolic) ensureSuperSolveScratch() {
	sp := s.super
	if cap(s.sacc) < sp.maxW {
		s.sacc = make([]float64, sp.maxW)
	}
	if cap(s.stmp) < sp.maxNr {
		s.stmp = make([]float64, sp.maxNr)
	}
}

// ensureSuperFactorScratch sizes the serial supernodal factorization
// scratch: the global row map, the local-index list and the dense
// Schur-update buffer.
func (s *LDLSymbolic) ensureSuperFactorScratch() {
	sp := s.super
	if cap(s.ssmap) < s.n {
		s.ssmap = make([]int32, s.n)
	}
	if cap(s.sidx) < sp.maxNr {
		s.sidx = make([]int32, sp.maxNr)
	}
	if cap(s.supd) < sp.maxNr*sp.maxW {
		s.supd = make([]float64, sp.maxNr*sp.maxW)
	}
}

// factorizeSuper is the serial supernodal numeric factorization:
// left-looking over supernodes in elimination order.
func (s *LDLSymbolic) factorizeSuper(a *CSR, f *LDLNumeric) (*LDLNumeric, error) {
	s.ensureSuperFactorScratch()
	for sn := 0; sn < s.super.nsn; sn++ {
		if k, dk := f.factorSupernode(sn, a, s.ssmap[:s.n], s.sidx, s.supd); k >= 0 {
			return nil, fmt.Errorf("%w: pivot %g at permuted index %d", ErrNotPositiveDefinite, dk, k)
		}
	}
	return f, nil
}

// factorSupernode computes supernode sn's panel: scatter the fresh A
// values, subtract each descendant's dense rank-k Schur update
// (ascending — the fixed summation order), then factor the panel with a
// small dense LDLᵀ. On a non-positive pivot it records the first failing
// column, poisons invd with 0 (as the scalar parallel path does) and
// finishes the panel deterministically; the caller turns failK ≥ 0 into
// ErrNotPositiveDefinite. smap/idx/upd are caller-owned scratch, which
// is what lets the parallel schedule hand each worker its own.
func (f *LDLNumeric) factorSupernode(sn int, a *CSR, smap, idx []int32, upd []float64) (failK int, failDk float64) {
	s := f.s
	sp := s.super
	c0 := int(sp.snPtr[sn])
	w := int(sp.snPtr[sn+1]) - c0
	r0 := int(sp.rowPtr[sn])
	nr := int(sp.rowPtr[sn+1]) - r0
	pan := f.lx[sp.panelPtr[sn]:sp.panelPtr[sn+1]]
	clear(pan)
	for e := sp.aPtr[sn]; e < sp.aPtr[sn+1]; e++ {
		pan[sp.aOff[e]] = a.Val[sp.aSrc[e]]
	}
	rws := sp.rows[r0 : r0+nr]
	for i, r := range rws {
		smap[r] = int32(i)
	}

	// Descendant Schur updates: C = (P_d rows lo..nr_d) · D · (P_d rows
	// lo..hi)ᵀ accumulated densely, then scattered into the panel through
	// the row map. The closure structure guarantees every target row is
	// present.
	for u := sp.updPtr[sn]; u < sp.updPtr[sn+1]; u++ {
		d := int(sp.updSn[u])
		lo := int(sp.updLo[u])
		hi := int(sp.updHi[u])
		c0d := int(sp.snPtr[d])
		wd := int(sp.snPtr[d+1]) - c0d
		nrd := int(sp.rowPtr[d+1] - sp.rowPtr[d])
		pand := f.lx[sp.panelPtr[d]:sp.panelPtr[d+1]]
		m := nrd - lo // update rows (all land in this panel)
		nb := hi - lo // update columns (descendant rows inside our columns)
		rd := sp.rows[int(sp.rowPtr[d])+lo : sp.rowPtr[d+1]]
		lidx := idx[:m]
		for i, r := range rd {
			lidx[i] = smap[r]
		}
		C := upd[: m*nb : m*nb]
		for b := 0; b < nb; b++ {
			colC := C[b*m : b*m+m]
			for i := b; i < m; i++ {
				colC[i] = 0
			}
		}
		for k := 0; k < wd; k++ {
			dk := f.d[c0d+k]
			colD := pand[k*nrd+lo : k*nrd+nrd]
			for b := 0; b < nb; b++ {
				t := colD[b] * dk
				if t == 0 {
					continue // padded zeros; value-determined, so still deterministic
				}
				colC := C[b*m : b*m+m]
				for i := b; i < m; i++ {
					colC[i] += colD[i] * t
				}
			}
		}
		for b := 0; b < nb; b++ {
			j := int(lidx[b])
			dst := pan[j*nr : j*nr+nr]
			colC := C[b*m : b*m+m]
			for i := b; i < m; i++ {
				dst[lidx[i]] -= colC[i]
			}
		}
	}

	// Dense LDLᵀ of the panel: factor the w×w diagonal block and scale
	// the below-block columns, right-looking within the panel.
	failK = -1
	for k := 0; k < w; k++ {
		col := pan[k*nr : k*nr+nr]
		dk := col[k]
		f.d[c0+k] = dk
		if dk <= 0 {
			if failK < 0 {
				failK, failDk = c0+k, dk
			}
			f.invd[c0+k] = 0 // poison, never a valid 1/dk for dk > 0
		} else {
			f.invd[c0+k] = 1 / dk
		}
		iv := f.invd[c0+k]
		for i := k + 1; i < nr; i++ {
			col[i] *= iv
		}
		for j := k + 1; j < w; j++ {
			t := col[j] * dk
			if t == 0 {
				continue
			}
			cj := pan[j*nr : j*nr+nr]
			for i := j; i < nr; i++ {
				cj[i] -= col[i] * t
			}
		}
	}
	return failK, failDk
}

// forwardSuper applies supernode sn's slice of the forward sweep to the
// permuted work vector w: gather each ascending descendant's
// contribution (accumulated first, subtracted once — the fixed order
// shared by serial, parallel and batch paths), then the dense unit-lower
// solve on the diagonal block. acc is caller-owned scratch of maxW.
func (f *LDLNumeric) forwardSuper(sn int, w, acc []float64) {
	sp := f.s.super
	c0 := int(sp.snPtr[sn])
	wid := int(sp.snPtr[sn+1]) - c0
	for u := sp.updPtr[sn]; u < sp.updPtr[sn+1]; u++ {
		d := int(sp.updSn[u])
		lo := int(sp.updLo[u])
		hi := int(sp.updHi[u])
		c0d := int(sp.snPtr[d])
		wd := int(sp.snPtr[d+1]) - c0d
		nrd := int(sp.rowPtr[d+1] - sp.rowPtr[d])
		pand := f.lx[sp.panelPtr[d]:]
		m := hi - lo
		a := acc[:m]
		for b := range a {
			a[b] = 0
		}
		for k := 0; k < wd; k++ {
			t := w[c0d+k]
			col := pand[k*nrd+lo : k*nrd+hi]
			for b, v := range col {
				a[b] += v * t
			}
		}
		rd := sp.rows[int(sp.rowPtr[d])+lo:]
		for b := 0; b < m; b++ {
			w[rd[b]] -= a[b]
		}
	}
	nr := int(sp.rowPtr[sn+1] - sp.rowPtr[sn])
	pan := f.lx[sp.panelPtr[sn]:]
	for k := 0; k < wid; k++ {
		t := w[c0+k]
		col := pan[k*nr:]
		for i := k + 1; i < wid; i++ {
			w[c0+i] -= col[i] * t
		}
	}
}

// backwardSuper applies supernode sn's slice of the backward (Lᵀ) sweep:
// gather the already-final ancestor values of the below rows into tmp,
// subtract each column's dot product, then the transposed dense solve on
// the diagonal block. tmp is caller-owned scratch of maxNr.
func (f *LDLNumeric) backwardSuper(sn int, w, tmp []float64) {
	sp := f.s.super
	c0 := int(sp.snPtr[sn])
	wid := int(sp.snPtr[sn+1]) - c0
	r0 := int(sp.rowPtr[sn])
	nr := int(sp.rowPtr[sn+1]) - r0
	pan := f.lx[sp.panelPtr[sn]:]
	below := nr - wid
	rws := sp.rows[r0+wid : r0+nr]
	t := tmp[:below]
	for a, r := range rws {
		t[a] = w[r]
	}
	for k := 0; k < wid; k++ {
		col := pan[k*nr+wid : k*nr+nr]
		sum := 0.0
		for a, v := range col {
			sum += v * t[a]
		}
		w[c0+k] -= sum
	}
	for k := wid - 1; k >= 0; k-- {
		col := pan[k*nr:]
		sum := 0.0
		for i := k + 1; i < wid; i++ {
			sum += col[i] * w[c0+i]
		}
		w[c0+k] -= sum
	}
}

// solveSuper is the serial supernodal Solve body over the permuted work
// vector (permutation handled by the caller).
func (f *LDLNumeric) solveSuper() {
	s := f.s
	s.ensureSuperSolveScratch()
	sp := s.super
	w := s.w
	for sn := 0; sn < sp.nsn; sn++ {
		f.forwardSuper(sn, w, s.sacc)
	}
	for j := 0; j < s.n; j++ {
		w[j] *= f.invd[j]
	}
	for sn := sp.nsn - 1; sn >= 0; sn-- {
		f.backwardSuper(sn, w, s.stmp)
	}
}

// solveBatchSuper runs the supernodal triangular sweeps over the packed
// node-major k-wide panel wb (permutation and pack/unpack handled by
// SolveBatch). Per-RHS the operation sequence mirrors solveSuper exactly
// — same per-descendant accumulate-then-subtract order, same dense
// triangular loops — so each lane is bit-identical to a sequential
// supernodal Solve.
func (f *LDLNumeric) solveBatchSuper(wb []float64, kb int) {
	s := f.s
	sp := s.super
	if cap(s.sbacc) < sp.maxW*kb {
		s.sbacc = make([]float64, sp.maxW*kb)
	}
	if cap(s.sbtmp) < sp.maxNr*kb {
		s.sbtmp = make([]float64, sp.maxNr*kb)
	}
	acc := s.sbacc
	tmp := s.sbtmp
	for sn := 0; sn < sp.nsn; sn++ {
		c0 := int(sp.snPtr[sn])
		wid := int(sp.snPtr[sn+1]) - c0
		for u := sp.updPtr[sn]; u < sp.updPtr[sn+1]; u++ {
			d := int(sp.updSn[u])
			lo := int(sp.updLo[u])
			hi := int(sp.updHi[u])
			c0d := int(sp.snPtr[d])
			wd := int(sp.snPtr[d+1]) - c0d
			nrd := int(sp.rowPtr[d+1] - sp.rowPtr[d])
			pand := f.lx[sp.panelPtr[d]:]
			m := hi - lo
			a := acc[: m*kb : m*kb]
			for i := range a {
				a[i] = 0
			}
			for k := 0; k < wd; k++ {
				trow := wb[(c0d+k)*kb : (c0d+k)*kb+kb]
				col := pand[k*nrd+lo : k*nrd+hi]
				for b, v := range col {
					arow := a[b*kb : b*kb+kb]
					for r, t := range trow {
						arow[r] += v * t
					}
				}
			}
			rd := sp.rows[int(sp.rowPtr[d])+lo:]
			for b := 0; b < m; b++ {
				dst := wb[int(rd[b])*kb:]
				dst = dst[:kb:kb]
				arow := a[b*kb : b*kb+kb]
				for r := range dst {
					dst[r] -= arow[r]
				}
			}
		}
		nr := int(sp.rowPtr[sn+1] - sp.rowPtr[sn])
		pan := f.lx[sp.panelPtr[sn]:]
		for k := 0; k < wid; k++ {
			trow := wb[(c0+k)*kb : (c0+k)*kb+kb]
			col := pan[k*nr:]
			for i := k + 1; i < wid; i++ {
				v := col[i]
				drow := wb[(c0+i)*kb : (c0+i)*kb+kb]
				for r, t := range trow {
					drow[r] -= v * t
				}
			}
		}
	}
	n := s.n
	for j := 0; j < n; j++ {
		iv := f.invd[j]
		row := wb[j*kb : j*kb+kb]
		for r := range row {
			row[r] *= iv
		}
	}
	for sn := sp.nsn - 1; sn >= 0; sn-- {
		c0 := int(sp.snPtr[sn])
		wid := int(sp.snPtr[sn+1]) - c0
		r0 := int(sp.rowPtr[sn])
		nr := int(sp.rowPtr[sn+1]) - r0
		pan := f.lx[sp.panelPtr[sn]:]
		below := nr - wid
		rws := sp.rows[r0+wid : r0+nr]
		t := tmp[: below*kb : below*kb]
		for a, r := range rws {
			copy(t[a*kb:a*kb+kb], wb[int(r)*kb:int(r)*kb+kb])
		}
		for k := 0; k < wid; k++ {
			col := pan[k*nr+wid : k*nr+nr]
			arow := acc[:kb]
			for r := range arow {
				arow[r] = 0
			}
			for a, v := range col {
				srow := t[a*kb : a*kb+kb]
				for r, tv := range srow {
					arow[r] += v * tv
				}
			}
			drow := wb[(c0+k)*kb : (c0+k)*kb+kb]
			for r := range drow {
				drow[r] -= arow[r]
			}
		}
		for k := wid - 1; k >= 0; k-- {
			col := pan[k*nr:]
			arow := acc[:kb]
			for r := range arow {
				arow[r] = 0
			}
			for i := k + 1; i < wid; i++ {
				v := col[i]
				srow := wb[(c0+i)*kb : (c0+i)*kb+kb]
				for r, tv := range srow {
					arow[r] += v * tv
				}
			}
			drow := wb[(c0+k)*kb : (c0+k)*kb+kb]
			for r := range drow {
				drow[r] -= arow[r]
			}
		}
	}
}
