package mat

import (
	"errors"
	"math/rand"
	"runtime"
	"testing"
)

// TestSolveBatchMatchesSolve is the batch-path property test: for every
// batch width, SolveBatch must reproduce k sequential Solve calls — on
// these strictly positive systems, bit for bit (far inside the ≤ 1e-12
// contract the gang scheduler depends on).
func TestSolveBatchMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 4; trial++ {
		n := 40 + rng.Intn(160)
		a := randSPD(n, 1+rng.Intn(3), rng)
		s, err := AnalyzeLDL(a, OrderAuto)
		if err != nil {
			t.Fatal(err)
		}
		f, err := s.Factorize(a, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 3, 5, 8, 17} {
			bs := make([][]float64, k)
			xs := make([][]float64, k)
			want := make([][]float64, k)
			for r := 0; r < k; r++ {
				bs[r] = make([]float64, n)
				for i := range bs[r] {
					bs[r][i] = 250 + 100*rng.Float64()
				}
				xs[r] = make([]float64, n)
				want[r] = make([]float64, n)
				f.Solve(want[r], bs[r])
			}
			f.SolveBatch(xs, bs)
			for r := 0; r < k; r++ {
				for i := 0; i < n; i++ {
					if xs[r][i] != want[r][i] {
						t.Fatalf("n=%d k=%d rhs %d node %d: batch %g vs solve %g",
							n, k, r, i, xs[r][i], want[r][i])
					}
				}
			}
		}
	}
}

// TestSolveBatchAliasing: xs[r] may alias bs[r] (the thermal stepper
// solves into the state vector the RHS was built from).
func TestSolveBatchAliasing(t *testing.T) {
	a := gridLaplacian(9, 7, 1.5)
	s, err := AnalyzeLDL(a, OrderAuto)
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	var xs, bs, want [][]float64
	for r := 0; r < k; r++ {
		v := make([]float64, a.N)
		for i := range v {
			v[i] = float64(i%11) + float64(r)
		}
		w := make([]float64, a.N)
		f.Solve(w, v)
		want = append(want, w)
		xs = append(xs, v) // alias: solve in place
		bs = append(bs, v)
	}
	f.SolveBatch(xs, bs)
	for r := 0; r < k; r++ {
		for i := range xs[r] {
			if xs[r][i] != want[r][i] {
				t.Fatalf("aliased batch rhs %d node %d: %g vs %g", r, i, xs[r][i], want[r][i])
			}
		}
	}
}

// TestFactorizeParallelBitIdentical pins the determinism contract of the
// level-parallel factorization: for every worker count the factors match
// the serial ones bit for bit, on fresh and on recycled numeric objects.
func TestFactorizeParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cases := []*CSR{
		gridLaplacian(40, 33, 2.5),
		randSPD(900, 3, rng),
	}
	for ci, a := range cases {
		serial, err := AnalyzeLDL(a, OrderAuto)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := serial.Factorize(a, nil)
		if err != nil {
			t.Fatal(err)
		}
		bvec := make([]float64, a.N)
		for i := range bvec {
			bvec[i] = 300 + 50*rng.Float64()
		}
		wantX := make([]float64, a.N)
		fs.Solve(wantX, bvec)
		for _, workers := range []int{2, 3, 4, 8} {
			par := serial.Clone()
			par.SetWorkers(workers)
			if par.Workers() != workers {
				t.Fatalf("Workers() = %d, want %d", par.Workers(), workers)
			}
			fp, err := par.Factorize(a, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := range fs.d {
				if fs.d[i] != fp.d[i] {
					t.Fatalf("case %d workers %d: d[%d] %g vs serial %g", ci, workers, i, fp.d[i], fs.d[i])
				}
			}
			for i := range fs.lx {
				if fs.lx[i] != fp.lx[i] {
					t.Fatalf("case %d workers %d: lx[%d] differs", ci, workers, i)
				}
			}
			// Refactorize into the same numeric object (the per-tick
			// reuse path) stays identical too.
			if _, err := par.Factorize(a, fp); err != nil {
				t.Fatal(err)
			}
			for i := range fs.lx {
				if fs.lx[i] != fp.lx[i] {
					t.Fatalf("case %d workers %d: lx[%d] differs after refactorize", ci, workers, i)
				}
			}
			x := make([]float64, a.N)
			fp.Solve(x, bvec)
			for i := range x {
				if x[i] != wantX[i] {
					t.Fatalf("case %d workers %d: parallel solve x[%d]=%g vs serial %g", ci, workers, i, x[i], wantX[i])
				}
			}
			// And the batch path through a parallel-factorized object.
			xs := [][]float64{make([]float64, a.N), make([]float64, a.N)}
			fp.SolveBatch(xs, [][]float64{bvec, bvec})
			for r := range xs {
				for i := range xs[r] {
					if xs[r][i] != wantX[i] {
						t.Fatalf("case %d workers %d: batch rhs %d diverges at %d", ci, workers, r, i)
					}
				}
			}
		}
	}
}

// TestFactorizeParallelNotPositiveDefinite: the parallel path must report
// the same lowest failing pivot as the serial one and stay usable after.
func TestFactorizeParallelNotPositiveDefinite(t *testing.T) {
	a := gridLaplacian(30, 20, 2)
	s, err := AnalyzeLDL(a, OrderAuto)
	if err != nil {
		t.Fatal(err)
	}
	// Make it indefinite: flip one diagonal strongly negative.
	bad := a
	bad.AddAt(215, 215, -1e6)
	serialErr := func() error {
		s2, err := AnalyzeLDL(bad, OrderAuto)
		if err != nil {
			t.Fatal(err)
		}
		_, ferr := s2.Factorize(bad, nil)
		return ferr
	}()
	if !errors.Is(serialErr, ErrNotPositiveDefinite) {
		t.Fatalf("serial: got %v", serialErr)
	}
	s.SetWorkers(4)
	_, perr := s.Factorize(bad, nil)
	if !errors.Is(perr, ErrNotPositiveDefinite) {
		t.Fatalf("parallel: got %v", perr)
	}
	if perr.Error() != serialErr.Error() {
		t.Fatalf("parallel error %q differs from serial %q", perr, serialErr)
	}
	// Restore and factorize again: scratch must be clean.
	bad.AddAt(215, 215, 1e6)
	f, err := s.Factorize(bad, nil)
	if err != nil {
		t.Fatalf("factorize after failure: %v", err)
	}
	s.SetWorkers(1)
	fs, err := s.Factorize(bad, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fs.d {
		if fs.d[i] != f.d[i] {
			t.Fatalf("d[%d] differs after recovery", i)
		}
	}
}

// TestParallelHotPathAllocFree extends the allocation contract to the
// parallel and batch paths: after SetWorkers and the first SolveBatch of
// a given width, refactorize, solve and batch-solve allocate nothing.
func TestParallelHotPathAllocFree(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs GOMAXPROCS >= 2")
	}
	a := gridLaplacian(40, 32, 2)
	s, err := AnalyzeLDL(a, OrderAuto)
	if err != nil {
		t.Fatal(err)
	}
	s.SetWorkers(4)
	f, err := s.Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	bvec := make([]float64, a.N)
	for i := range bvec {
		bvec[i] = 1
	}
	x := make([]float64, a.N)
	xs := [][]float64{make([]float64, a.N), make([]float64, a.N), make([]float64, a.N)}
	bs := [][]float64{bvec, bvec, bvec}
	f.SolveBatch(xs, bs) // size the panel
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.Factorize(a, f); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("parallel Factorize allocates %v objects, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() { f.Solve(x, bvec) }); allocs != 0 {
		t.Errorf("parallel Solve allocates %v objects, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() { f.SolveBatch(xs, bs) }); allocs != 0 {
		t.Errorf("SolveBatch allocates %v objects, want 0", allocs)
	}
}
