package mat

import "sort"

// Ordering selects the fill-reducing node ordering used by AnalyzeLDL.
// Orderings only read the sparsity pattern, which must be structurally
// symmetric (every stored (i,j) has a stored (j,i) — the RC-network
// Laplacians this package factors always are).
type Ordering int

const (
	// OrderAuto picks nested dissection for systems large enough for its
	// asymptotics to pay off, and RCM below that.
	OrderAuto Ordering = iota
	// OrderNatural keeps the assembly order (reference/testing).
	OrderNatural
	// OrderRCM is reverse Cuthill-McKee: a bandwidth-reducing BFS
	// ordering, close to optimal on the thin banded grids of coarse
	// thermal models.
	OrderRCM
	// OrderND is nested dissection via BFS level-set bisection (the
	// George–Liu automatic dissection): separators are middle BFS levels,
	// halves are ordered recursively, separators last. On the
	// paper-resolution quasi-planar grids it beats RCM's dense band by a
	// wide fill margin.
	OrderND
)

// ndThreshold is the node count at which OrderAuto switches from RCM to
// nested dissection. Measured on the thermal stacks, ND's lower fill
// already beats RCM's dense band by n ≈ 2000 (the coarse 23×20×5 grid),
// in both factorization and sweep time; below a few hundred nodes the
// two are equivalent and RCM's simpler analysis wins.
const ndThreshold = 512

// ndLeaf bounds the subgraph size that nested dissection stops splitting
// and orders with RCM.
const ndLeaf = 96

// Permutation computes the elimination order of o for the symmetric
// sparsity pattern of a: perm[k] is the original index of the node
// eliminated k-th.
func (o Ordering) Permutation(a *CSR) []int {
	n := a.N
	switch o {
	case OrderNatural:
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		return perm
	case OrderRCM:
		return newOrderer(a).rcm()
	case OrderND:
		return newOrderer(a).nd()
	default: // OrderAuto
		if n >= ndThreshold {
			return newOrderer(a).nd()
		}
		return newOrderer(a).rcm()
	}
}

// orderer carries the shared BFS scratch of the ordering algorithms.
type orderer struct {
	a   *CSR
	deg []int // off-diagonal degree (tie-breaking; full-graph degrees)
	// mark[v] == epoch marks v as a member of the subgraph under
	// consideration; vis[v] == vepoch marks v as reached by the current
	// BFS.
	mark, vis     []int
	epoch, vepoch int
}

func newOrderer(a *CSR) *orderer {
	o := &orderer{
		a:    a,
		deg:  make([]int, a.N),
		mark: make([]int, a.N),
		vis:  make([]int, a.N),
	}
	for r := 0; r < a.N; r++ {
		d := 0
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			if a.Col[k] != r {
				d++
			}
		}
		o.deg[r] = d
	}
	return o
}

// markSubset makes nodes the current subgraph.
func (o *orderer) markSubset(nodes []int) {
	o.epoch++
	for _, v := range nodes {
		o.mark[v] = o.epoch
	}
}

// bfs runs a breadth-first search from start over the current subgraph,
// visiting the neighbors of each node in ascending-degree order (the
// Cuthill-McKee tie-break). It returns the visited nodes in BFS order and
// the level boundaries: level l is order[lptr[l]:lptr[l+1]].
func (o *orderer) bfs(start int) (order []int, lptr []int) {
	a := o.a
	o.vepoch++
	ve := o.vepoch
	order = append(order, start)
	o.vis[start] = ve
	lptr = append(lptr, 0)
	head := 0
	for head < len(order) {
		levelEnd := len(order)
		lptr = append(lptr, levelEnd)
		for ; head < levelEnd; head++ {
			v := order[head]
			frontier := len(order)
			for k := a.RowPtr[v]; k < a.RowPtr[v+1]; k++ {
				w := a.Col[k]
				if w == v || o.mark[w] != o.epoch || o.vis[w] == ve {
					continue
				}
				o.vis[w] = ve
				order = append(order, w)
			}
			next := order[frontier:]
			sort.Slice(next, func(i, j int) bool {
				if o.deg[next[i]] != o.deg[next[j]] {
					return o.deg[next[i]] < o.deg[next[j]]
				}
				return next[i] < next[j]
			})
		}
	}
	// Invariant: the loop exits only after a round that added no nodes,
	// so lptr's last entry already equals len(order) — level l is always
	// order[lptr[l]:lptr[l+1]].
	return order, lptr
}

// pseudoPeripheral finds a pseudo-peripheral node of the component of the
// current subgraph containing seed (George-Liu): repeatedly re-root the
// BFS at a minimum-degree node of the deepest level until the eccentricity
// stops growing. It returns the final BFS level structure.
func (o *orderer) pseudoPeripheral(seed int) (order []int, lptr []int) {
	order, lptr = o.bfs(seed)
	for iter := 0; iter < 8; iter++ {
		if len(lptr) < 3 {
			return order, lptr
		}
		last := order[lptr[len(lptr)-2]:]
		best := last[0]
		for _, v := range last[1:] {
			if o.deg[v] < o.deg[best] || (o.deg[v] == o.deg[best] && v < best) {
				best = v
			}
		}
		order2, lptr2 := o.bfs(best)
		if len(lptr2) <= len(lptr) {
			return order, lptr
		}
		order, lptr = order2, lptr2
	}
	return order, lptr
}

// appendRCM appends the reverse Cuthill-McKee order of the given node set
// (every component) to perm.
func (o *orderer) appendRCM(nodes []int, perm *[]int) {
	for len(nodes) > 0 {
		o.markSubset(nodes)
		order, _ := o.pseudoPeripheral(nodes[0])
		base := len(*perm)
		*perm = append(*perm, order...)
		// Reverse the component's Cuthill-McKee order in place.
		seg := (*perm)[base:]
		for i, j := 0, len(seg)-1; i < j; i, j = i+1, j-1 {
			seg[i], seg[j] = seg[j], seg[i]
		}
		if len(order) == len(nodes) {
			return
		}
		nodes = o.remainder(nodes)
	}
}

// remainder returns the members of nodes not reached by the latest BFS.
func (o *orderer) remainder(nodes []int) []int {
	rest := make([]int, 0, len(nodes))
	for _, v := range nodes {
		if o.vis[v] != o.vepoch {
			rest = append(rest, v)
		}
	}
	return rest
}

func (o *orderer) rcm() []int {
	all := make([]int, o.a.N)
	for i := range all {
		all[i] = i
	}
	perm := make([]int, 0, o.a.N)
	o.appendRCM(all, &perm)
	return perm
}

func (o *orderer) nd() []int {
	all := make([]int, o.a.N)
	for i := range all {
		all[i] = i
	}
	perm := make([]int, 0, o.a.N)
	o.dissect(all, &perm)
	return perm
}

// dissect orders a node set by recursive level-set bisection.
func (o *orderer) dissect(nodes []int, perm *[]int) {
	for len(nodes) > 0 {
		if len(nodes) <= ndLeaf {
			o.appendRCM(nodes, perm)
			return
		}
		o.markSubset(nodes)
		order, lptr := o.pseudoPeripheral(nodes[0])
		var rest []int
		if len(order) < len(nodes) {
			// Disconnected subgraph: split off this component, keep
			// looping on the rest (computed now, before recursive calls
			// overwrite the visit marks).
			rest = o.remainder(nodes)
		}
		o.dissectComponent(order, lptr, perm)
		if rest == nil {
			return
		}
		nodes = rest
	}
}

// dissectComponent splits one connected component, given its BFS level
// structure: the separator is the smallest level whose cumulative position
// lies in the middle band, halves recurse, separator nodes come last.
func (o *orderer) dissectComponent(order []int, lptr []int, perm *[]int) {
	nlev := len(lptr) - 1
	n := len(order)
	if nlev < 3 || n <= ndLeaf {
		o.appendRCM(order, perm)
		return
	}
	lo, hi := n/4, (3*n)/4
	sep := -1
	for l := 1; l <= nlev-2; l++ {
		if lptr[l] < lo || lptr[l] > hi {
			continue
		}
		if sep < 0 || lptr[l+1]-lptr[l] < lptr[sep+1]-lptr[sep] {
			sep = l
		}
	}
	if sep < 0 {
		// No level starts inside the middle band (one huge level):
		// take the level containing the median node.
		for l := 1; l <= nlev-2; l++ {
			if lptr[l+1] > n/2 {
				sep = l
				break
			}
		}
	}
	if sep < 0 {
		o.appendRCM(order, perm)
		return
	}
	lower := order[:lptr[sep]]
	separator := order[lptr[sep]:lptr[sep+1]]
	upper := order[lptr[sep+1]:]
	o.dissect(lower, perm)
	o.dissect(upper, perm)
	*perm = append(*perm, separator...)
}
