package mat

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Level-parallel LDLᵀ factorization and triangular solves.
//
// The elimination tree exposes all the parallelism of the up-looking
// factorization: row k of L depends only on columns i with k on i's
// ancestor path, and every ancestor sits at a strictly higher level than
// its descendants. Processing the level schedule (see LDLSymbolic.lvlPtr)
// with a barrier between levels therefore touches every shared datum —
// the column cursors lnz, the appended lx values, the solve work vector —
// in exactly the serial elimination order:
//
//   - two rows of one level have disjoint patterns (a shared pattern node
//     would make them comparable in the tree, hence differently leveled),
//     so their lnz increments and lx appends never collide;
//   - a row's reads (invd, lx prefixes, forward-sweep inputs) come from
//     strictly lower levels, already complete at the barrier;
//   - within each level the append positions are fixed by the prefilled
//     pattern, so the chunking of a level across workers cannot reorder
//     any floating-point operation.
//
// Results are consequently bit-identical to the serial paths at every
// worker count, with one documented exception: the parallel forward sweep
// runs in gather form and therefore does not reproduce the serial
// scatter's skip of exact-zero multipliers. Subtracting the skipped ±0
// products changes a result bit only when an accumulator holds -0 — never
// the case for the strictly positive thermal systems this package serves.

const (
	// factorParCutoff is the minimum level width (rows per chunk) worth
	// fanning out during factorization; narrower levels run on the
	// calling goroutine.
	factorParCutoff = 96
	// solveParCutoff is the equivalent bound for the triangular sweeps,
	// whose per-row work is roughly the row's entry count.
	solveParCutoff = 512
	// maxSolveWorkers bounds SetWorkers and the shared pool size.
	maxSolveWorkers = 32
)

// parSlot is one worker's private factorization scratch. The flag marks
// use a monotonic stamp (parState.stamp) instead of the serial row-index
// trick: a chunked pass does not revisit every index each call, so plain
// row marks could collide with a previous call's leftovers.
type parSlot struct {
	y       []float64
	pattern []int
	flag    []int
	// Supernodal scratch, sized lazily by ensureSuperSlots the first
	// time the dense-panel kernels run parallel on this symbolic.
	smap []int32
	idx  []int32
	upd  []float64
	acc  []float64
	tmp  []float64
}

// parState is the per-symbolic parallel configuration and scratch.
type parState struct {
	workers int
	stamp   int // flag-mark base; advanced by n per parallel factorization
	slots   []parSlot
	run     parRun
}

// parRun is the in-flight state of one parallel Factorize/Solve call,
// shared by the caller and the pool workers it enlists.
type parRun struct {
	s    *LDLSymbolic
	f    *LDLNumeric
	a    *CSR
	mark int // this call's flag-mark base

	wg     sync.WaitGroup
	failed atomic.Bool
	errMu  sync.Mutex
	errK   int
	errDk  float64
}

// levelTask is one contiguous chunk of one level, queued on the shared
// pool. A value struct: submitting allocates nothing.
type levelTask struct {
	r      *parRun
	lo, hi int32
	slot   int32
	kind   uint8
}

const (
	taskFactor uint8 = iota
	taskForward
	taskBackward
	taskSnFactor
	taskSnForward
	taskSnBackward
)

func (t levelTask) run() {
	switch t.kind {
	case taskFactor:
		t.r.factorRows(int(t.slot), int(t.lo), int(t.hi))
	case taskForward:
		t.r.forwardRows(int(t.lo), int(t.hi))
	case taskBackward:
		t.r.backwardCols(int(t.lo), int(t.hi))
	case taskSnFactor:
		t.r.factorSupernodes(int(t.slot), int(t.lo), int(t.hi))
	default:
		t.r.sweepSupernodes(int(t.slot), int(t.lo), int(t.hi), t.kind)
	}
	t.r.wg.Done()
}

// solverPool is the process-wide worker pool behind every level-parallel
// symbolic object. Goroutines start lazily on first use and park on the
// channel when idle; tasks never block on other tasks, so a bounded pool
// cannot deadlock however many factorizations run concurrently.
var solverPool struct {
	once sync.Once
	ch   chan levelTask
}

func poolSubmit(t levelTask) {
	solverPool.once.Do(func() {
		solverPool.ch = make(chan levelTask, 256)
		nw := runtime.NumCPU()
		if nw > maxSolveWorkers {
			nw = maxSolveWorkers
		}
		for i := 0; i < nw; i++ {
			go func() {
				for t := range solverPool.ch {
					t.run()
				}
			}()
		}
	})
	solverPool.ch <- t
}

// SetWorkers configures level-parallel Factorize and Solve on this
// symbolic object: up to n goroutines (the caller plus shared-pool
// workers) cooperate on each level of the elimination tree, with small
// levels staying on the caller. n ≤ 1 restores the serial paths (the
// default). Results are bit-identical to serial at every n. The worker
// scratch is allocated here, so the per-tick paths stay allocation-free;
// clones do not inherit the setting.
func (s *LDLSymbolic) SetWorkers(n int) {
	if n > maxSolveWorkers {
		n = maxSolveWorkers
	}
	if n <= 1 {
		s.par = nil
		return
	}
	if s.par != nil && s.par.workers == n {
		return
	}
	st := &parState{workers: n, slots: make([]parSlot, n)}
	for i := range st.slots {
		sl := parSlot{
			y:       make([]float64, s.n),
			pattern: make([]int, s.n),
			flag:    make([]int, s.n),
		}
		for j := range sl.flag {
			sl.flag[j] = -1
		}
		st.slots[i] = sl
	}
	s.par = st
}

// Workers reports the configured worker budget (1 = serial).
func (s *LDLSymbolic) Workers() int {
	if s.par == nil {
		return 1
	}
	return s.par.workers
}

// factorizeParallel runs the up-looking factorization over the level
// schedule. On a non-positive pivot it keeps going (garbage flows only
// toward higher row indices, whose factors are discarded) and reports the
// lowest failing row — the same row, with the bit-identical pivot value,
// that the serial pass would have stopped at.
func (s *LDLSymbolic) factorizeParallel(a *CSR, f *LDLNumeric) (*LDLNumeric, error) {
	st := s.par
	r := &st.run
	r.s, r.f, r.a = s, f, a
	r.mark = st.stamp
	st.stamp += s.n
	r.failed.Store(false)
	r.errK = -1
	nw := st.workers
	for l := 0; l+1 < len(s.lvlPtr); l++ {
		lo, hi := int(s.lvlPtr[l]), int(s.lvlPtr[l+1])
		size := hi - lo
		nc := size / factorParCutoff
		if nc > nw {
			nc = nw
		}
		if nc <= 1 {
			r.factorRows(0, lo, hi)
			continue
		}
		r.wg.Add(nc - 1)
		for c := 1; c < nc; c++ {
			poolSubmit(levelTask{
				r:    r,
				lo:   int32(lo + c*size/nc),
				hi:   int32(lo + (c+1)*size/nc),
				slot: int32(c),
				kind: taskFactor,
			})
		}
		r.factorRows(0, lo, lo+size/nc)
		r.wg.Wait()
	}
	r.a = nil
	if r.failed.Load() {
		for i := range st.slots {
			y := st.slots[i].y
			for j := range y {
				y[j] = 0
			}
		}
		return nil, fmt.Errorf("%w: pivot %g at permuted index %d", ErrNotPositiveDefinite, r.errDk, r.errK)
	}
	return f, nil
}

// factorRows processes rows lvlNode[lo:hi] (one chunk of one level) with
// slot-private scratch. The body mirrors the serial Factorize loop minus
// the pattern write (prefilled by AnalyzeLDL).
func (r *parRun) factorRows(slot, lo, hi int) {
	s, f, a := r.s, r.f, r.a
	sl := &s.par.slots[slot]
	y, pattern, flag := sl.y, sl.pattern, sl.flag
	lnz := s.lnz
	n := s.n
	for t := lo; t < hi; t++ {
		k := int(s.lvlNode[t])
		mark := r.mark + k
		top := n
		flag[k] = mark
		lnz[k] = 0
		for p := s.cp[k]; p < s.cp[k+1]; p++ {
			i := s.ci[p]
			y[i] += a.Val[s.csrc[p]]
			ln := 0
			for ; flag[i] != mark; i = s.parent[i] {
				pattern[ln] = i
				ln++
				flag[i] = mark
			}
			for ln > 0 {
				ln--
				top--
				pattern[top] = pattern[ln]
			}
		}
		dk := y[k]
		y[k] = 0
		for t2 := top; t2 < n; t2++ {
			i := pattern[t2]
			yi := y[i]
			y[i] = 0
			lki := yi * f.invd[i]
			p2 := s.lp[i] + lnz[i]
			for p := s.lp[i]; p < p2; p++ {
				y[s.li[p]] -= f.lx[p] * yi
			}
			f.lx[p2] = lki
			lnz[i]++
			dk -= lki * yi
		}
		f.d[k] = dk
		if dk <= 0 {
			r.recordError(k, dk)
			f.invd[k] = 0 // poison, never a valid 1/dk for dk > 0
			continue
		}
		f.invd[k] = 1 / dk
	}
}

func (r *parRun) recordError(k int, dk float64) {
	r.errMu.Lock()
	if r.errK < 0 || k < r.errK {
		r.errK, r.errDk = k, dk
	}
	r.errMu.Unlock()
	r.failed.Store(true)
}

// solveParallel is Solve over the level schedule: the forward sweep in
// row-gather form ascending levels, the backward sweep (already a gather)
// descending levels. Per-row operation order matches the serial sweeps,
// so results are bit-identical (see the package comment above for the
// exact-zero caveat).
func (f *LDLNumeric) solveParallel(x, b []float64) {
	s := f.s
	st := s.par
	r := &st.run
	r.s, r.f = s, f
	n := s.n
	w := s.w
	nw := st.workers
	for k := 0; k < n; k++ {
		w[k] = b[s.perm[k]]
	}
	nLev := len(s.lvlPtr) - 1
	for l := 0; l < nLev; l++ {
		r.runLevel(int(s.lvlPtr[l]), int(s.lvlPtr[l+1]), nw, taskForward)
	}
	for j := 0; j < n; j++ {
		w[j] *= f.invd[j]
	}
	for l := nLev - 1; l >= 0; l-- {
		r.runLevel(int(s.lvlPtr[l]), int(s.lvlPtr[l+1]), nw, taskBackward)
	}
	for k := 0; k < n; k++ {
		x[s.perm[k]] = w[k]
	}
}

// runLevel fans one level's chunk list out to the pool (caller keeps the
// first chunk) or runs it inline when too narrow to pay for the barrier.
func (r *parRun) runLevel(lo, hi, nw int, kind uint8) {
	size := hi - lo
	nc := size / solveParCutoff
	if nc > nw {
		nc = nw
	}
	if nc <= 1 {
		if kind == taskForward {
			r.forwardRows(lo, hi)
		} else {
			r.backwardCols(lo, hi)
		}
		return
	}
	r.wg.Add(nc - 1)
	for c := 1; c < nc; c++ {
		poolSubmit(levelTask{
			r:    r,
			lo:   int32(lo + c*size/nc),
			hi:   int32(lo + (c+1)*size/nc),
			kind: kind,
		})
	}
	if kind == taskForward {
		r.forwardRows(lo, lo+size/nc)
	} else {
		r.backwardCols(lo, lo+size/nc)
	}
	r.wg.Wait()
}

// forwardRows applies the forward sweep to rows lvlNode[lo:hi] in gather
// form: row i subtracts its L entries against already-final w values from
// lower levels, in ascending column order (the serial update order).
func (r *parRun) forwardRows(lo, hi int) {
	s, f := r.s, r.f
	w := s.w
	for t := lo; t < hi; t++ {
		i := int(s.lvlNode[t])
		wi := w[i]
		for u := s.rp[i]; u < s.rp[i+1]; u++ {
			wi -= f.lx[s.rpos[u]] * w[s.rcol[u]]
		}
		w[i] = wi
	}
}

// backwardCols applies the backward (Lᵀ) sweep to columns lvlNode[lo:hi];
// column j reads only strictly higher levels (its tree ancestors), which
// a descending-level pass has already finalized.
func (r *parRun) backwardCols(lo, hi int) {
	s, f := r.s, r.f
	w := s.w
	for t := lo; t < hi; t++ {
		j := int(s.lvlNode[t])
		wj := w[j]
		for p := s.lp[j]; p < s.lp[j+1]; p++ {
			wj -= f.lx[p] * w[s.li[p]]
		}
		w[j] = wj
	}
}
