package mat

import (
	"math"
	"math/rand"
	"testing"
)

// randomSPD builds a random diagonally dominant symmetric (hence SPD)
// matrix of dimension n with full diagonal.
func randomSPD(n int, seed int64) *CSR {
	r := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	rowSum := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.25 {
				v := -r.Float64()
				b.Add(i, j, v)
				b.Add(j, i, v)
				rowSum[i] += -v
				rowSum[j] += -v
			}
		}
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, rowSum[i]+1+r.Float64())
	}
	return b.Build()
}

func residual(m *CSR, x, b []float64) float64 {
	ax := make([]float64, m.N)
	m.MulVec(ax, x)
	for i := range ax {
		ax[i] = b[i] - ax[i]
	}
	return Norm2(ax) / Norm2(b)
}

func TestSolveCGSSORMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{4, 17, 60} {
		m := randomSPD(n, int64(n))
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xj := make([]float64, n)
		rj, err := SolveCG(m, xj, b, CGOptions{Tol: 1e-12})
		if err != nil {
			t.Fatalf("n=%d jacobi: %v", n, err)
		}
		xs := make([]float64, n)
		rs, err := SolveCG(m, xs, b, CGOptions{Tol: 1e-12, Precond: PrecondSSOR})
		if err != nil {
			t.Fatalf("n=%d ssor: %v", n, err)
		}
		for i := range xj {
			if math.Abs(xj[i]-xs[i]) > 1e-8*(1+math.Abs(xj[i])) {
				t.Fatalf("n=%d: solutions differ at %d: %g vs %g", n, i, xj[i], xs[i])
			}
		}
		if res := residual(m, xs, b); res > 1e-11 {
			t.Errorf("n=%d: SSOR residual %g above tolerance", n, res)
		}
		if rs.Iterations > rj.Iterations {
			t.Errorf("n=%d: SSOR took %d iterations, Jacobi %d — preconditioner not helping",
				n, rs.Iterations, rj.Iterations)
		}
	}
}

func TestSolveCGSSOROmega(t *testing.T) {
	m := laplacian1D(40)
	b := make([]float64, 40)
	for i := range b {
		b[i] = 1
	}
	for _, omega := range []float64{0.8, 1.0, 1.5} {
		x := make([]float64, 40)
		if _, err := SolveCG(m, x, b, CGOptions{Tol: 1e-11, Precond: PrecondSSOR, Omega: omega}); err != nil {
			t.Fatalf("omega=%g: %v", omega, err)
		}
		if res := residual(m, x, b); res > 1e-10 {
			t.Errorf("omega=%g: residual %g", omega, res)
		}
	}
	x := make([]float64, 40)
	if _, err := SolveCG(m, x, b, CGOptions{Precond: PrecondSSOR, Omega: 2.5}); err == nil {
		t.Error("expected error for omega outside (0,2)")
	}
}

func TestCGWorkspaceReuse(t *testing.T) {
	// One workspace must serve consecutive solves of different systems and
	// sizes, and give bitwise the same answers as throwaway workspaces.
	var w CGWorkspace
	for _, tc := range []struct {
		n    int
		seed int64
	}{{30, 1}, {30, 2}, {12, 3}, {45, 4}} {
		m := randomSPD(tc.n, tc.seed)
		b := make([]float64, tc.n)
		rng := rand.New(rand.NewSource(tc.seed))
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		for _, pc := range []Preconditioner{PrecondJacobi, PrecondSSOR} {
			opt := CGOptions{Tol: 1e-11, Precond: pc}
			xw := make([]float64, tc.n)
			if _, err := w.Solve(m, xw, b, opt); err != nil {
				t.Fatalf("n=%d %v reused: %v", tc.n, pc, err)
			}
			xf := make([]float64, tc.n)
			if _, err := SolveCG(m, xf, b, opt); err != nil {
				t.Fatalf("n=%d %v fresh: %v", tc.n, pc, err)
			}
			for i := range xw {
				if xw[i] != xf[i] {
					t.Fatalf("n=%d %v: reused workspace diverged at %d: %g vs %g",
						tc.n, pc, i, xw[i], xf[i])
				}
			}
		}
	}
}

func TestCGWorkspaceSolveAllocFree(t *testing.T) {
	m := laplacian1D(200)
	b := make([]float64, 200)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, 200)
	var w CGWorkspace
	for _, pc := range []Preconditioner{PrecondJacobi, PrecondSSOR} {
		opt := CGOptions{Tol: 1e-10, Precond: pc}
		// Prime the workspace (first call sizes the buffers).
		if _, err := w.Solve(m, x, b, opt); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			for i := range x {
				x[i] = 0
			}
			if _, err := w.Solve(m, x, b, opt); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: %v allocs per warm solve, want 0", pc, allocs)
		}
	}
}

func TestPreconditionerString(t *testing.T) {
	if PrecondJacobi.String() != "jacobi" || PrecondSSOR.String() != "ssor" {
		t.Error("unexpected Preconditioner names")
	}
	if Preconditioner(9).String() == "" {
		t.Error("unknown preconditioner must still format")
	}
}
