package mat

import (
	"math/rand"
	"testing"
)

func checkPermutation(t *testing.T, perm []int, n int) {
	t.Helper()
	if len(perm) != n {
		t.Fatalf("permutation has %d entries, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, v := range perm {
		if v < 0 || v >= n {
			t.Fatalf("permutation entry %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("node %d ordered twice", v)
		}
		seen[v] = true
	}
}

func TestOrderingsAreBijections(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []*CSR{
		gridLaplacian(1, 1, 1),
		gridLaplacian(7, 1, 1),
		gridLaplacian(13, 11, 1),
		gridLaplacian(40, 30, 1),
		randSPD(50, 2, rng),
	}
	// A disconnected pattern: two independent grids.
	{
		g := gridLaplacian(6, 5, 1)
		b := NewBuilder(2 * g.N)
		for r := 0; r < g.N; r++ {
			for k := g.RowPtr[r]; k < g.RowPtr[r+1]; k++ {
				b.Add(r, g.Col[k], g.Val[k])
				b.Add(r+g.N, g.Col[k]+g.N, g.Val[k])
			}
		}
		cases = append(cases, b.Build())
	}
	for ci, a := range cases {
		for _, ord := range []Ordering{OrderNatural, OrderRCM, OrderND, OrderAuto} {
			perm := ord.Permutation(a)
			checkPermutation(t, perm, a.N)
			_ = ci
		}
	}
}

func TestOrderingDeterministic(t *testing.T) {
	a := gridLaplacian(25, 20, 1)
	for _, ord := range []Ordering{OrderRCM, OrderND} {
		p1 := ord.Permutation(a)
		p2 := ord.Permutation(a)
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("%d: ordering not deterministic at %d", ord, i)
			}
		}
	}
}

// TestRCMReducesBandwidth checks RCM does its job on a long thin grid
// assembled in an adversarial (column-major) node order.
func TestRCMReducesBandwidth(t *testing.T) {
	nx, ny := 60, 4
	n := nx * ny
	b := NewBuilder(n)
	id := func(x, y int) int { return x*ny + y } // column-major: bandwidth ny·...
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			b.Add(id(x, y), id(x, y), 4)
			if x+1 < nx {
				b.Add(id(x, y), id(x+1, y), -1)
				b.Add(id(x+1, y), id(x, y), -1)
			}
			if y+1 < ny {
				b.Add(id(x, y), id(x, y+1), -1)
				b.Add(id(x, y+1), id(x, y), -1)
			}
		}
	}
	a := b.Build()
	bandwidth := func(perm []int) int {
		pinv := make([]int, n)
		for k, v := range perm {
			pinv[v] = k
		}
		bw := 0
		for r := 0; r < n; r++ {
			for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
				if d := pinv[r] - pinv[a.Col[k]]; d > bw {
					bw = d
				}
			}
		}
		return bw
	}
	rcm := bandwidth(OrderRCM.Permutation(a))
	if rcm > 2*ny {
		t.Errorf("RCM bandwidth %d, want ≤ %d on a %d×%d grid", rcm, 2*ny, nx, ny)
	}
}

// TestNDFillBeatsNatural compares nnz(L) on a square grid — nested
// dissection must produce meaningfully less fill than the natural order.
func TestNDFillBeatsNatural(t *testing.T) {
	a := gridLaplacian(48, 48, 1)
	fill := func(ord Ordering) int {
		s, err := AnalyzeLDL(a, ord)
		if err != nil {
			t.Fatal(err)
		}
		return s.NNZL()
	}
	nat, nd := fill(OrderNatural), fill(OrderND)
	if nd >= nat {
		t.Errorf("ND fill %d not below natural fill %d", nd, nat)
	}
	t.Logf("fill on 48×48 grid: natural %d, RCM %d, ND %d", nat, fill(OrderRCM), nd)
}
