package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randSPD builds a random sparse symmetric diagonally dominant matrix
// (hence SPD) with roughly extra off-diagonal pairs per row.
func randSPD(n int, extra int, rng *rand.Rand) *CSR {
	b := NewBuilder(n)
	type edge struct{ i, j int }
	seen := map[edge]bool{}
	for i := 0; i < n; i++ {
		b.Add(i, i, 0)
	}
	// A connected backbone plus random extra edges.
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		seen[edge{j, i}] = true
	}
	for k := 0; k < n*extra; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		seen[edge{i, j}] = true
	}
	diag := make([]float64, n)
	for e := range seen {
		v := -(0.1 + rng.Float64())
		b.Add(e.i, e.j, v)
		b.Add(e.j, e.i, v)
		diag[e.i] += -v
		diag[e.j] += -v
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, diag[i]+0.5+rng.Float64())
	}
	return b.Build()
}

// gridLaplacian builds the 5-point Laplacian of an nx×ny grid plus a
// positive diagonal shift — the shape of the thermal backward-Euler
// systems.
func gridLaplacian(nx, ny int, shift float64) *CSR {
	n := nx * ny
	b := NewBuilder(n)
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			b.Add(id(x, y), id(x, y), shift)
			if x+1 < nx {
				b.Add(id(x, y), id(x, y), 1)
				b.Add(id(x+1, y), id(x+1, y), 1)
				b.Add(id(x, y), id(x+1, y), -1)
				b.Add(id(x+1, y), id(x, y), -1)
			}
			if y+1 < ny {
				b.Add(id(x, y), id(x, y), 1)
				b.Add(id(x, y+1), id(x, y+1), 1)
				b.Add(id(x, y), id(x, y+1), -1)
				b.Add(id(x, y+1), id(x, y), -1)
			}
		}
	}
	return b.Build()
}

func TestLDLSolveMatchesLURandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, ord := range []Ordering{OrderNatural, OrderRCM, OrderND, OrderAuto} {
		for trial := 0; trial < 6; trial++ {
			n := 5 + rng.Intn(60)
			a := randSPD(n, 1+rng.Intn(3), rng)
			s, err := AnalyzeLDL(a, ord)
			if err != nil {
				t.Fatalf("ord %v: %v", ord, err)
			}
			f, err := s.Factorize(a, nil)
			if err != nil {
				t.Fatalf("ord %v: %v", ord, err)
			}
			bvec := make([]float64, n)
			for i := range bvec {
				bvec[i] = rng.NormFloat64()
			}
			want, err := SolveLU(FromCSR(a), bvec)
			if err != nil {
				t.Fatal(err)
			}
			x := make([]float64, n)
			f.Solve(x, bvec)
			for i := range x {
				if d := math.Abs(x[i] - want[i]); d > 1e-8*(1+math.Abs(want[i])) {
					t.Fatalf("ord %v n=%d: x[%d]=%g want %g", ord, n, i, x[i], want[i])
				}
			}
			if res := residual(a, x, bvec); res > 1e-10 {
				t.Fatalf("ord %v n=%d: residual %g", ord, n, res)
			}
		}
	}
}

func TestLDLGridAgainstCG(t *testing.T) {
	a := gridLaplacian(30, 25, 2.5)
	s, err := AnalyzeLDL(a, OrderAuto)
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	bvec := make([]float64, a.N)
	for i := range bvec {
		bvec[i] = rng.Float64()
	}
	xd := make([]float64, a.N)
	f.Solve(xd, bvec)
	xcg := make([]float64, a.N)
	if _, err := SolveCG(a, xcg, bvec, CGOptions{Tol: 1e-12, Precond: PrecondSSOR}); err != nil {
		t.Fatal(err)
	}
	for i := range xd {
		if d := math.Abs(xd[i] - xcg[i]); d > 1e-8 {
			t.Fatalf("node %d: direct %g vs CG %g", i, xd[i], xcg[i])
		}
	}
}

// TestLDLRefactorize checks the workspace-reuse path: after the diagonal
// values change (the thermal solver's flow/dt updates), refactorizing into
// the same numeric object must match a fresh factorization.
func TestLDLRefactorize(t *testing.T) {
	a := gridLaplacian(12, 9, 1)
	s, err := AnalyzeLDL(a, OrderRCM)
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the diagonal (same structure).
	for r := 0; r < a.N; r++ {
		a.AddAt(r, r, 0.5+float64(r%7))
	}
	f, err = s.Factorize(a, f)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := s.Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.d {
		if f.d[i] != fresh.d[i] {
			t.Fatalf("d[%d]=%g differs from fresh %g after reuse", i, f.d[i], fresh.d[i])
		}
	}
	for i := range f.lx {
		if f.lx[i] != fresh.lx[i] {
			t.Fatalf("lx[%d] differs after reuse", i)
		}
	}
	bvec := make([]float64, a.N)
	for i := range bvec {
		bvec[i] = float64(i%5) - 2
	}
	x := make([]float64, a.N)
	f.Solve(x, bvec)
	if res := residual(a, x, bvec); res > 1e-12 {
		t.Fatalf("residual %g after refactorize", res)
	}
}

func TestLDLSolveAliasing(t *testing.T) {
	a := gridLaplacian(8, 8, 1.5)
	s, err := AnalyzeLDL(a, OrderND)
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	bvec := make([]float64, a.N)
	for i := range bvec {
		bvec[i] = math.Sin(float64(i))
	}
	want := make([]float64, a.N)
	f.Solve(want, bvec)
	x := append([]float64(nil), bvec...)
	f.Solve(x, x) // aliased
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("aliased solve differs at %d: %g vs %g", i, x[i], want[i])
		}
	}
}

func TestLDLNotPositiveDefinite(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 0, 1)
	b.Add(1, 1, -2) // indefinite
	b.Add(2, 2, 1)
	b.Add(0, 1, 0.1)
	b.Add(1, 0, 0.1)
	a := b.Build()
	s, err := AnalyzeLDL(a, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Factorize(a, nil); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("got %v, want ErrNotPositiveDefinite", err)
	}
	// The workspace must remain usable after the failure.
	good := gridLaplacian(1, 3, 1)
	s2, err := AnalyzeLDL(good, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Factorize(good, nil); err != nil {
		t.Fatalf("factorize after failure: %v", err)
	}
}

func TestLDLStructureMismatch(t *testing.T) {
	a := gridLaplacian(5, 5, 1)
	s, err := AnalyzeLDL(a, OrderAuto)
	if err != nil {
		t.Fatal(err)
	}
	other := gridLaplacian(6, 5, 1)
	if _, err := s.Factorize(other, nil); err == nil {
		t.Fatal("factorizing a different structure must fail")
	}
}

// TestLDLHotPathAllocFree pins the per-tick contract: refactorization into
// a reused numeric object and every solve allocate nothing.
func TestLDLHotPathAllocFree(t *testing.T) {
	a := gridLaplacian(20, 16, 2)
	s, err := AnalyzeLDL(a, OrderAuto)
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	bvec := make([]float64, a.N)
	for i := range bvec {
		bvec[i] = 1
	}
	x := make([]float64, a.N)
	if allocs := testing.AllocsPerRun(10, func() { f.Solve(x, bvec) }); allocs != 0 {
		t.Errorf("Solve allocates %v objects, want 0", allocs)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.Factorize(a, f); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("reusing Factorize allocates %v objects, want 0", allocs)
	}
}

// TestMatchesRejectsDifferentPattern: a matrix with the same dimension
// and nonzero count but a different sparsity pattern must not match the
// analysis (a 4-node path vs a 4-node star both have n=4, nnz=10).
func TestMatchesRejectsDifferentPattern(t *testing.T) {
	build := func(edges [][2]int) *CSR {
		b := NewBuilder(4)
		for i := 0; i < 4; i++ {
			b.Add(i, i, 4)
		}
		for _, e := range edges {
			b.Add(e[0], e[1], -1)
			b.Add(e[1], e[0], -1)
		}
		return b.Build()
	}
	path := build([][2]int{{0, 1}, {1, 2}, {2, 3}})
	star := build([][2]int{{1, 0}, {1, 2}, {1, 3}})
	s, err := AnalyzeLDL(path, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Matches(path) {
		t.Error("analysis must match its own matrix")
	}
	if path.NNZ() != star.NNZ() {
		t.Fatalf("test premise broken: nnz %d vs %d", path.NNZ(), star.NNZ())
	}
	if s.Matches(star) {
		t.Error("same-n same-nnz different-pattern matrix must not match")
	}
	if !s.Clone().Matches(path) {
		t.Error("clone must carry the pattern fingerprint")
	}
}
