package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// scalarColumn collects column j of a scalar-layout factor as a row→value
// map (diagonal of L implicit).
func scalarColumn(s *LDLSymbolic, f *LDLNumeric, j int) map[int32]float64 {
	col := map[int32]float64{}
	for p := s.lp[j]; p < s.lp[j+1]; p++ {
		col[s.li[p]] = f.lx[p]
	}
	return col
}

// compareSuperToScalar checks the supernodal factor fs against the scalar
// factor fc column by column: shared entries within relTol relative,
// padded slots exactly ±0, D within relTol.
func compareSuperToScalar(t *testing.T, s *LDLSymbolic, fs, fc *LDLNumeric, relTol float64) {
	t.Helper()
	sp := s.super
	for j := 0; j < s.n; j++ {
		if d := math.Abs(fs.d[j] - fc.d[j]); d > relTol*(1+math.Abs(fc.d[j])) {
			t.Fatalf("d[%d]=%g scalar %g", j, fs.d[j], fc.d[j])
		}
	}
	for sn := 0; sn < sp.nsn; sn++ {
		c0 := int(sp.snPtr[sn])
		w := int(sp.snPtr[sn+1]) - c0
		r0 := int(sp.rowPtr[sn])
		nr := int(sp.rowPtr[sn+1]) - r0
		pan := fs.lx[sp.panelPtr[sn]:sp.panelPtr[sn+1]]
		rws := sp.rows[r0 : r0+nr]
		for k := 0; k < w; k++ {
			j := c0 + k
			want := scalarColumn(s, fc, j)
			for i := k + 1; i < nr; i++ {
				v := pan[k*nr+i]
				if wv, ok := want[rws[i]]; ok {
					if d := math.Abs(v - wv); d > relTol*(1+math.Abs(wv)) {
						t.Fatalf("L[%d,%d]=%g scalar %g", rws[i], j, v, wv)
					}
				} else if v != 0 {
					t.Fatalf("padded slot L[%d,%d]=%g, want exact 0", rws[i], j, v)
				}
			}
		}
	}
}

// TestSupernodalMatchesScalar is the core property test: across random
// SPD systems and orderings, the dense-panel factorization agrees with
// the scalar factorization to ≤1e-9 relative on L and D, every padded
// slot stays a structural ±0, and the panel solve matches the scalar
// solve to the same bound.
func TestSupernodalMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, ord := range []Ordering{OrderNatural, OrderRCM, OrderND, OrderAuto} {
		for trial := 0; trial < 5; trial++ {
			n := 20 + rng.Intn(300)
			a := randSPD(n, 1+rng.Intn(3), rng)
			s, err := AnalyzeLDL(a, ord)
			if err != nil {
				t.Fatal(err)
			}
			s.SetSupernodal(false)
			fc, err := s.Factorize(a, nil)
			if err != nil {
				t.Fatal(err)
			}
			s.SetSupernodal(true)
			fs, err := s.Factorize(a, nil)
			if err != nil {
				t.Fatalf("ord %v n=%d: supernodal: %v", ord, n, err)
			}
			compareSuperToScalar(t, s, fs, fc, 1e-9)

			bvec := make([]float64, n)
			for i := range bvec {
				bvec[i] = rng.NormFloat64()
			}
			xc := make([]float64, n)
			xs := make([]float64, n)
			fc.Solve(xc, bvec)
			fs.Solve(xs, bvec)
			for i := range xs {
				if d := math.Abs(xs[i] - xc[i]); d > 1e-9*(1+math.Abs(xc[i])) {
					t.Fatalf("ord %v n=%d: x[%d]=%g scalar %g", ord, n, i, xs[i], xc[i])
				}
			}
			if res := residual(a, xs, bvec); res > 1e-9 {
				t.Fatalf("ord %v n=%d: residual %g", ord, n, res)
			}
		}
	}
}

// TestSupernodalGridMatchesScalar repeats the property on the grid
// Laplacians the thermal solver actually produces, where amalgamation
// finds real runs (the random graphs above mostly exercise narrow
// panels).
func TestSupernodalGridMatchesScalar(t *testing.T) {
	a := gridLaplacian(40, 30, 2)
	s, err := AnalyzeLDL(a, OrderAuto)
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanPanelWidth() <= 1 {
		t.Fatalf("grid Laplacian found no amalgamation (mean width %g)", s.MeanPanelWidth())
	}
	s.SetSupernodal(false)
	fc, err := s.Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSupernodal(true)
	fs, err := s.Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	compareSuperToScalar(t, s, fs, fc, 1e-9)
}

// TestSupernodalDegenerateWidthOne rebuilds the partition with panel
// width capped at one and no relaxation: every supernode is a single
// column, there is no padding, and the blocked kernels degrade to a
// per-column left-looking factorization that matches the scalar path to
// tight tolerance.
func TestSupernodalDegenerateWidthOne(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randSPD(150, 2, rng)
	s, err := AnalyzeLDL(a, OrderAuto)
	if err != nil {
		t.Fatal(err)
	}
	s.buildSupernodes(1, false)
	if s.super.nsn != s.n {
		t.Fatalf("width-1 partition has %d supernodes, want %d", s.super.nsn, s.n)
	}
	if s.super.padNNZ != 0 {
		t.Fatalf("width-1 partition has %d padded entries, want 0", s.super.padNNZ)
	}
	s.SetSupernodal(false)
	fc, err := s.Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSupernodal(true)
	fs, err := s.Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	compareSuperToScalar(t, s, fs, fc, 1e-12)
	bvec := make([]float64, a.N)
	for i := range bvec {
		bvec[i] = rng.NormFloat64()
	}
	x := make([]float64, a.N)
	fs.Solve(x, bvec)
	if res := residual(a, x, bvec); res > 1e-10 {
		t.Fatalf("residual %g", res)
	}
}

// TestSupernodalParallelBitIdentical pins the determinism contract: the
// supernodal factorization and solves are bit-identical to the serial
// supernodal path at every worker count, and run-to-run at a fixed
// count. (The name matches CI's determinism regex, which reruns it under
// -race at GOMAXPROCS=1 and 8.)
func TestSupernodalParallelBitIdentical(t *testing.T) {
	a := gridLaplacian(60, 50, 2)
	rng := rand.New(rand.NewSource(3))
	bvec := make([]float64, a.N)
	for i := range bvec {
		bvec[i] = rng.NormFloat64()
	}

	base, err := AnalyzeLDL(a, OrderAuto)
	if err != nil {
		t.Fatal(err)
	}
	base.SetSupernodal(true)
	fRef, err := base.Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	xRef := make([]float64, a.N)
	fRef.Solve(xRef, bvec)

	for _, workers := range []int{1, 2, 4, 8} {
		s := base.Clone()
		s.SetWorkers(workers)
		if !s.Supernodal() {
			t.Fatal("clone must inherit the supernodal setting")
		}
		for run := 0; run < 2; run++ {
			f, err := s.Factorize(a, nil)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			for i := range f.lx {
				if math.Float64bits(f.lx[i]) != math.Float64bits(fRef.lx[i]) {
					t.Fatalf("workers=%d run=%d: lx[%d]=%x serial %x",
						workers, run, i, math.Float64bits(f.lx[i]), math.Float64bits(fRef.lx[i]))
				}
			}
			for i := range f.d {
				if math.Float64bits(f.d[i]) != math.Float64bits(fRef.d[i]) {
					t.Fatalf("workers=%d run=%d: d[%d] differs", workers, run, i)
				}
			}
			x := make([]float64, a.N)
			f.Solve(x, bvec)
			for i := range x {
				if math.Float64bits(x[i]) != math.Float64bits(xRef[i]) {
					t.Fatalf("workers=%d run=%d: x[%d]=%g serial %g", workers, run, i, x[i], xRef[i])
				}
			}
		}
	}
}

// TestSupernodalSolveBatchMatchesSequential: each lane of a supernodal
// SolveBatch is bit-identical to a sequential supernodal Solve of that
// right-hand side.
func TestSupernodalSolveBatchMatchesSequential(t *testing.T) {
	a := gridLaplacian(35, 25, 2)
	s, err := AnalyzeLDL(a, OrderAuto)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSupernodal(true)
	f, err := s.Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const k = 8
	xs := make([][]float64, k)
	bs := make([][]float64, k)
	for r := range xs {
		xs[r] = make([]float64, a.N)
		bs[r] = make([]float64, a.N)
		for i := range bs[r] {
			bs[r][i] = rng.NormFloat64()
		}
	}
	f.SolveBatch(xs, bs)
	want := make([]float64, a.N)
	for r := range xs {
		f.Solve(want, bs[r])
		for i := range want {
			if math.Float64bits(xs[r][i]) != math.Float64bits(want[i]) {
				t.Fatalf("rhs %d: x[%d]=%g sequential %g", r, i, xs[r][i], want[i])
			}
		}
	}
}

// TestSupernodalAutoSelection pins the profitability gate: small systems
// stay scalar (golden byte-stability depends on it), a paper-scale grid
// flips supernodal automatically.
func TestSupernodalAutoSelection(t *testing.T) {
	small := gridLaplacian(12, 10, 2)
	s, err := AnalyzeLDL(small, OrderAuto)
	if err != nil {
		t.Fatal(err)
	}
	if s.Supernodal() {
		t.Errorf("n=%d must default to the scalar kernels", small.N)
	}
	big := gridLaplacian(70, 60, 2)
	sb, err := AnalyzeLDL(big, OrderAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !sb.Supernodal() {
		t.Errorf("n=%d mean width %.2f must default to the panel kernels",
			big.N, sb.MeanPanelWidth())
	}
	if sb.Supernodes() <= 0 || sb.PanelNNZ() < sb.NNZL() {
		t.Errorf("partition stats inconsistent: %d supernodes, panel nnz %d < nnzL %d",
			sb.Supernodes(), sb.PanelNNZ(), sb.NNZL())
	}
}

// TestSupernodalHotPathAllocFree extends the per-tick contract to the
// panel kernels: refactorization into a reused numeric object, Solve and
// SolveBatch all allocate nothing in steady state.
func TestSupernodalHotPathAllocFree(t *testing.T) {
	a := gridLaplacian(70, 60, 2)
	s, err := AnalyzeLDL(a, OrderAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Supernodal() {
		t.Fatal("expected the auto gate to pick supernodal at this size")
	}
	f, err := s.Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	bvec := make([]float64, a.N)
	for i := range bvec {
		bvec[i] = 1
	}
	x := make([]float64, a.N)
	if allocs := testing.AllocsPerRun(10, func() { f.Solve(x, bvec) }); allocs != 0 {
		t.Errorf("supernodal Solve allocates %v objects, want 0", allocs)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.Factorize(a, f); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("reused supernodal Factorize allocates %v objects, want 0", allocs)
	}
	const k = 4
	xs := make([][]float64, k)
	bs := make([][]float64, k)
	for r := range xs {
		xs[r] = make([]float64, a.N)
		bs[r] = bvec
	}
	f.SolveBatch(xs, bs) // grow the panel scratch once
	if allocs := testing.AllocsPerRun(10, func() { f.SolveBatch(xs, bs) }); allocs != 0 {
		t.Errorf("supernodal SolveBatch allocates %v objects, want 0", allocs)
	}
}

// TestSupernodalNotPositiveDefinite: an indefinite system fails with
// ErrNotPositiveDefinite reporting the same first pivot from the serial
// and every parallel supernodal path, and the symbolic object stays
// reusable afterwards.
func TestSupernodalNotPositiveDefinite(t *testing.T) {
	nx, ny := 30, 20
	good := gridLaplacian(nx, ny, 2)
	bad := gridLaplacian(nx, ny, 2)
	// Same structure, one diagonal entry driven negative.
	sink := (ny/2)*nx + nx/2
	for p := bad.RowPtr[sink]; p < bad.RowPtr[sink+1]; p++ {
		if bad.Col[p] == sink {
			bad.Val[p] = -3
		}
	}
	s, err := AnalyzeLDL(good, OrderAuto)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSupernodal(true)
	_, serialErr := s.Factorize(bad, nil)
	if !errors.Is(serialErr, ErrNotPositiveDefinite) {
		t.Fatalf("serial: got %v, want ErrNotPositiveDefinite", serialErr)
	}
	for _, workers := range []int{2, 4} {
		sc := s.Clone()
		sc.SetWorkers(workers)
		_, parErr := sc.Factorize(bad, nil)
		if !errors.Is(parErr, ErrNotPositiveDefinite) {
			t.Fatalf("workers=%d: got %v", workers, parErr)
		}
		if parErr.Error() != serialErr.Error() {
			t.Fatalf("workers=%d: error %q, serial %q", workers, parErr, serialErr)
		}
	}
	// Recovery: the same symbolic object factorizes the SPD system.
	f, err := s.Factorize(good, nil)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	b := make([]float64, good.N)
	b[0] = 1
	x := make([]float64, good.N)
	f.Solve(x, b)
	if res := residual(good, x, b); res > 1e-10 {
		t.Fatalf("recovery residual %g", res)
	}
}
