package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveLUKnown(t *testing.T) {
	// 2x + y = 5; x + 3y = 10  ->  x = 1, y = 3.
	a := NewDense(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveLU(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveLUNeedsPivoting(t *testing.T) {
	// Zero leading pivot forces a row swap.
	a := NewDense(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveLU(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestSolveLUSingular(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := SolveLU(a, []float64{1, 2}); err == nil {
		t.Error("expected error for singular matrix")
	}
}

func TestSolveLURandomResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(15)
		a := NewDense(n, n)
		for i := 0; i < n*n; i++ {
			a.Data[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)) // keep well conditioned
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLU(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for r := 0; r < n; r++ {
			s := 0.0
			for c := 0; c < n; c++ {
				s += a.At(r, c) * x[c]
			}
			if math.Abs(s-b[r]) > 1e-9 {
				t.Fatalf("trial %d: residual %v at row %d", trial, s-b[r], r)
			}
		}
	}
}

func TestLeastSquaresExactFit(t *testing.T) {
	// Overdetermined but consistent: y = 2t + 1 sampled at 5 points.
	a := NewDense(5, 2)
	b := make([]float64, 5)
	for i := 0; i < 5; i++ {
		tt := float64(i)
		a.Set(i, 0, tt)
		a.Set(i, 1, 1)
		b[i] = 2*tt + 1
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-6 || math.Abs(x[1]-1) > 1e-6 {
		t.Errorf("fit = %v, want [2 1]", x)
	}
}

func TestLeastSquaresMinimizesResidual(t *testing.T) {
	// Noisy line; perturbing the solution must not reduce the residual.
	rng := rand.New(rand.NewSource(11))
	n := 50
	a := NewDense(n, 2)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		tt := float64(i) / 10
		a.Set(i, 0, tt)
		a.Set(i, 1, 1)
		b[i] = 3*tt - 0.5 + 0.1*rng.NormFloat64()
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	resid := func(p []float64) float64 {
		s := 0.0
		for i := 0; i < n; i++ {
			r := a.At(i, 0)*p[0] + a.At(i, 1)*p[1] - b[i]
			s += r * r
		}
		return s
	}
	base := resid(x)
	for _, d := range [][]float64{{0.01, 0}, {-0.01, 0}, {0, 0.01}, {0, -0.01}} {
		if resid([]float64{x[0] + d[0], x[1] + d[1]}) < base-1e-9 {
			t.Errorf("perturbation %v improved residual", d)
		}
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	a := NewDense(1, 2)
	if _, err := LeastSquares(a, []float64{1}); err == nil {
		t.Error("expected error for underdetermined system")
	}
}

func TestFromCSRRoundTrip(t *testing.T) {
	m := laplacian1D(4)
	d := FromCSR(m)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if d.At(r, c) != m.At(r, c) {
				t.Errorf("(%d,%d): dense %v != sparse %v", r, c, d.At(r, c), m.At(r, c))
			}
		}
	}
}
