package mat

import (
	"errors"
	"fmt"
)

// ErrNotPositiveDefinite is returned by Factorize when a pivot is not
// strictly positive — the input is not SPD and the factorization (valid
// only for the positive definite RC-network systems this package targets)
// cannot continue.
var ErrNotPositiveDefinite = errors.New("mat: matrix not positive definite")

// LDLSymbolic is the reusable symbolic analysis of a sparse LDLᵀ
// factorization: the fill-reducing permutation, the elimination tree and
// the fill pattern of L, all of which depend only on the sparsity
// structure. One analysis serves every numeric factorization of matrices
// sharing that structure (the thermal solver re-factors the same Laplacian
// whenever the coolant flow setting or the time step changes).
//
// A symbolic object carries the scratch buffers of Factorize and Solve, so
// neither allocates; consequently it must not be used from more than one
// goroutine at a time.
type LDLSymbolic struct {
	n      int
	nnzA   int    // stored entries of the analyzed matrix (structure check)
	fprint uint64 // fingerprint of the analyzed sparsity pattern (Matches)

	perm []int // perm[k] = original index of the node eliminated k-th
	pinv []int // pinv[perm[k]] = k

	// Upper triangle of the permuted matrix PAPᵀ in compressed-column
	// form: column k holds rows i ≤ k. csrc maps each entry to its index
	// in the Val array of the original CSR, so numeric factorization
	// reads fresh values without re-permuting the matrix.
	cp, ci, csrc []int

	parent []int   // elimination tree
	lp     []int   // column pointers of L (len n+1)
	li     []int32 // row indices of L (len nnz(L)); filled by AnalyzeLDL
	// (int32 halves the index traffic of the two solve sweeps, the
	// per-tick hot path; 2³¹ nodes is far beyond any grid here)

	// Level schedule of the elimination tree: level 0 holds the leaves,
	// level l the nodes whose longest descendant path has length l. All
	// rows of one level can be factorized (and their triangular-sweep
	// contributions applied) independently; levels are barriers. Nodes
	// are stored ascending within each level, so a level-ordered pass
	// touches rows in exactly the serial elimination order.
	lvlPtr  []int32 // len nLevels+1
	lvlNode []int32 // len n; level l = lvlNode[lvlPtr[l]:lvlPtr[l+1]]

	// Row-major view of L's pattern (the forward sweep in gather form):
	// row i's below-diagonal entries are rcol[rp[i]:rp[i+1]] (columns,
	// ascending — the serial scatter's update order) and the matching
	// value positions in lx are rpos[rp[i]:rp[i+1]].
	rp   []int32
	rcol []int32
	rpos []int32

	// Supernode partition and padded panel structure (immutable, shared
	// by Clone); superOn selects the dense-panel kernels per instance.
	super   *superState
	superOn bool

	// Scratch.
	y       []float64
	pattern []int
	flag    []int
	lnz     []int
	w       []float64 // Solve permuted work vector
	wb      []float64 // SolveBatch panel, grown to n·k on demand
	ssmap   []int32   // supernodal factorize: global row → panel-local row
	sidx    []int32   // supernodal factorize: per-update local row indices
	supd    []float64 // supernodal factorize: dense Schur-update buffer
	sacc    []float64 // supernodal solve: per-descendant accumulator
	stmp    []float64 // supernodal solve: below-row gather buffer
	sbacc   []float64 // supernodal batch solve accumulator, grown on demand
	sbtmp   []float64 // supernodal batch below-row gather, grown on demand

	par *parState // level-parallel state; nil = serial (SetWorkers)
}

// LDLNumeric holds the numeric factors of one matrix: PAPᵀ = L·D·Lᵀ with
// unit lower-triangular L (pattern in the shared LDLSymbolic) and positive
// diagonal D.
type LDLNumeric struct {
	s    *LDLSymbolic
	lx   []float64
	d    []float64
	invd []float64
	// super records the layout lx was factorized in (dense supernodal
	// panels vs scalar columns); Solve dispatches on it, and Factorize
	// reallocates when the symbolic mode has changed since.
	super bool
}

// N returns the system dimension.
func (s *LDLSymbolic) N() int { return s.n }

// Clone returns a symbolic analysis that shares the immutable products of
// AnalyzeLDL — the fill-reducing permutation, the permuted upper triangle,
// the elimination tree, the complete pattern of L (column pointers, row
// indices, the level schedule and the row-major view) — but owns its
// scratch buffers. The clone can therefore factorize and solve
// concurrently with the original (and with other clones), which is what
// lets one expensive analysis serve every model of a shared platform.
// Cloning costs a handful of O(n) allocations; the ordering and symbolic
// passes are not repeated. The supernode partition is shared too and the
// mode flag copied; worker configuration (SetWorkers) is per instance
// and not inherited.
func (s *LDLSymbolic) Clone() *LDLSymbolic {
	return &LDLSymbolic{
		n:      s.n,
		nnzA:   s.nnzA,
		fprint: s.fprint,
		perm:   s.perm,
		pinv:   s.pinv,
		cp:     s.cp, ci: s.ci, csrc: s.csrc,
		parent:  s.parent,
		lp:      s.lp,
		li:      s.li,
		lvlPtr:  s.lvlPtr,
		lvlNode: s.lvlNode,
		rp:      s.rp, rcol: s.rcol, rpos: s.rpos,
		super:   s.super,
		superOn: s.superOn,
		y:       make([]float64, s.n),
		pattern: make([]int, s.n),
		flag:    make([]int, s.n),
		lnz:     make([]int, s.n),
		w:       make([]float64, s.n),
	}
}

// NNZL returns the stored entry count of the L factor (fill diagnostics;
// excludes the unit diagonal and D).
func (s *LDLSymbolic) NNZL() int { return s.lp[s.n] }

// Matches reports whether a has the sparsity structure this analysis was
// performed for: dimension, stored-entry count and a fingerprint of the
// actual pattern (two grids can agree on n and nnz — e.g. an nx×ny vs
// ny×nx discretization — while their adjacency differs; factorizing
// through the wrong pattern would silently scatter entries to the wrong
// slots, so the pattern itself is checked).
func (s *LDLSymbolic) Matches(a *CSR) bool {
	return a.N == s.n && a.NNZ() == s.nnzA && structFingerprint(a) == s.fprint
}

// structFingerprint hashes a matrix's sparsity pattern (FNV-1a over the
// row pointers and column indices; values are ignored).
func structFingerprint(a *CSR) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, p := range a.RowPtr {
		h = (h ^ uint64(p)) * prime
	}
	for _, c := range a.Col {
		h = (h ^ uint64(c)) * prime
	}
	return h
}

// AnalyzeLDL performs the symbolic analysis of a: it computes the
// fill-reducing ordering, the elimination tree of the permuted matrix and
// the exact per-column fill counts, and allocates the pattern of L. The
// matrix must be structurally symmetric with a full diagonal (the
// assembled RC Laplacians are); SPD-ness itself is only detected during
// Factorize.
func AnalyzeLDL(a *CSR, ord Ordering) (*LDLSymbolic, error) {
	n := a.N
	s := &LDLSymbolic{
		n:      n,
		nnzA:   a.NNZ(),
		fprint: structFingerprint(a),
		perm:   ord.Permutation(a),
	}
	if len(s.perm) != n {
		return nil, fmt.Errorf("mat: ordering produced %d of %d nodes", len(s.perm), n)
	}
	s.pinv = make([]int, n)
	for k, v := range s.perm {
		s.pinv[v] = k
	}

	// Build the upper triangle of PAPᵀ by columns. Each stored symmetric
	// pair (r,c)/(c,r) contributes exactly one entry (the one whose
	// permuted row is ≤ its permuted column), the diagonal once.
	s.cp = make([]int, n+1)
	for r := 0; r < n; r++ {
		pr := s.pinv[r]
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			if pc := s.pinv[a.Col[k]]; pr <= pc {
				s.cp[pc+1]++
			}
		}
	}
	for k := 0; k < n; k++ {
		s.cp[k+1] += s.cp[k]
	}
	nnzU := s.cp[n]
	s.ci = make([]int, nnzU)
	s.csrc = make([]int, nnzU)
	next := make([]int, n)
	copy(next, s.cp[:n])
	for r := 0; r < n; r++ {
		pr := s.pinv[r]
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			if pc := s.pinv[a.Col[k]]; pr <= pc {
				s.ci[next[pc]] = pr
				s.csrc[next[pc]] = k
				next[pc]++
			}
		}
	}

	// Elimination tree and exact column counts of L (up-looking symbolic
	// pass): row k's pattern is the union of the etree paths from the
	// above-diagonal entries of column k up to k.
	s.parent = make([]int, n)
	s.flag = make([]int, n)
	s.lnz = make([]int, n)
	for k := 0; k < n; k++ {
		s.parent[k] = -1
		s.flag[k] = k
		for p := s.cp[k]; p < s.cp[k+1]; p++ {
			for i := s.ci[p]; s.flag[i] != k; i = s.parent[i] {
				if s.parent[i] < 0 {
					s.parent[i] = k
				}
				s.lnz[i]++
				s.flag[i] = k
			}
		}
	}
	s.lp = make([]int, n+1)
	for k := 0; k < n; k++ {
		s.lp[k+1] = s.lp[k] + s.lnz[k]
	}

	// Fill the row indices of L with a second reach pass. Row k of L
	// appends k to every column i in its pattern, and successive k are
	// appended in ascending order — exactly the positions the up-looking
	// numeric factorization writes — so the pattern becomes immutable and
	// Clone can share it. lnz doubles as the per-column cursor (Factorize
	// re-derives it row by row anyway).
	s.li = make([]int32, s.lp[n])
	for i := range s.lnz {
		s.lnz[i] = 0
	}
	for k := 0; k < n; k++ {
		s.flag[k] = k
		for p := s.cp[k]; p < s.cp[k+1]; p++ {
			for i := s.ci[p]; s.flag[i] != k; i = s.parent[i] {
				s.li[s.lp[i]+s.lnz[i]] = int32(k)
				s.lnz[i]++
				s.flag[i] = k
			}
		}
	}

	// Level schedule: lev(k) = longest path from a descendant leaf.
	// parent[k] > k always, so one ascending pass settles every level.
	lev := make([]int32, n)
	maxLev := int32(0)
	for k := 0; k < n; k++ {
		if p := s.parent[k]; p >= 0 && lev[k]+1 > lev[p] {
			lev[p] = lev[k] + 1
		}
		if lev[k] > maxLev {
			maxLev = lev[k]
		}
	}
	s.lvlPtr = make([]int32, maxLev+2)
	for k := 0; k < n; k++ {
		s.lvlPtr[lev[k]+1]++
	}
	for l := 0; l < len(s.lvlPtr)-1; l++ {
		s.lvlPtr[l+1] += s.lvlPtr[l]
	}
	s.lvlNode = make([]int32, n)
	next2 := make([]int32, maxLev+1)
	for k := 0; k < n; k++ { // ascending k ⇒ ascending within each level
		l := lev[k]
		s.lvlNode[s.lvlPtr[l]+next2[l]] = int32(k)
		next2[l]++
	}

	// Row-major view of L (forward sweep in gather form). Iterating
	// columns ascending yields ascending column indices within each row —
	// the serial scatter's per-row update order.
	s.rp = make([]int32, n+1)
	for _, r := range s.li {
		s.rp[r+1]++
	}
	for i := 0; i < n; i++ {
		s.rp[i+1] += s.rp[i]
	}
	s.rcol = make([]int32, len(s.li))
	s.rpos = make([]int32, len(s.li))
	rnext := make([]int32, n)
	for j := 0; j < n; j++ {
		for p := s.lp[j]; p < s.lp[j+1]; p++ {
			r := s.li[p]
			t := s.rp[r] + rnext[r]
			rnext[r]++
			s.rcol[t] = int32(j)
			s.rpos[t] = int32(p)
		}
	}

	// Supernode partition (dense-panel layer): computed once here from
	// the finished etree/pattern, shared by Clone. The dense-panel
	// kernels are selected by default exactly when the partition is
	// profitable; SetSupernodal overrides per instance.
	s.buildSupernodes(maxSuperWidth, true)
	s.superOn = s.SupernodalProfitable()

	s.y = make([]float64, n)
	s.pattern = make([]int, n)
	s.w = make([]float64, n)
	return s, nil
}

// Factorize computes the numeric LDLᵀ factors of a, which must have
// exactly the sparsity structure that was analyzed (the thermal solver
// rewrites values — the diagonal — on the fixed-structure system matrix).
// f is reused when non-nil (its buffers are overwritten); pass nil to
// allocate a fresh factor. Returns ErrNotPositiveDefinite (wrapped) when a
// pivot is ≤ 0.
func (s *LDLSymbolic) Factorize(a *CSR, f *LDLNumeric) (*LDLNumeric, error) {
	if a.N != s.n || a.NNZ() != s.nnzA {
		return nil, fmt.Errorf("mat: Factorize structure mismatch: got %d×%d nnz %d, analyzed %d×%d nnz %d",
			a.N, a.N, a.NNZ(), s.n, s.n, s.nnzA)
	}
	if f == nil || f.s != s || f.super != s.superOn {
		nx := s.lp[s.n]
		if s.superOn {
			nx = s.super.panelNNZ
		}
		f = &LDLNumeric{
			s:     s,
			lx:    make([]float64, nx),
			d:     make([]float64, s.n),
			invd:  make([]float64, s.n),
			super: s.superOn,
		}
	}
	if s.superOn {
		if s.par != nil {
			return s.factorizeSuperParallel(a, f)
		}
		return s.factorizeSuper(a, f)
	}
	if s.par != nil {
		return s.factorizeParallel(a, f)
	}
	n := s.n
	y, pattern, flag, lnz := s.y, s.pattern, s.flag, s.lnz
	for k := 0; k < n; k++ {
		// Pattern of row k of L via elimination-tree reach, values of
		// column k of the permuted upper triangle scattered into y.
		top := n
		flag[k] = k
		lnz[k] = 0
		for p := s.cp[k]; p < s.cp[k+1]; p++ {
			i := s.ci[p]
			y[i] += a.Val[s.csrc[p]]
			ln := 0
			for ; flag[i] != k; i = s.parent[i] {
				pattern[ln] = i
				ln++
				flag[i] = k
			}
			for ln > 0 {
				ln--
				top--
				pattern[top] = pattern[ln]
			}
		}
		// Sparse triangular solve across the pattern, in elimination
		// order (the stack holds it topologically sorted).
		dk := y[k]
		y[k] = 0
		for t := top; t < n; t++ {
			i := pattern[t]
			yi := y[i]
			y[i] = 0
			lki := yi * f.invd[i]
			p2 := s.lp[i] + lnz[i]
			for p := s.lp[i]; p < p2; p++ {
				y[s.li[p]] -= f.lx[p] * yi
			}
			f.lx[p2] = lki
			lnz[i]++
			dk -= lki * yi
		}
		if dk <= 0 {
			// Leave y clean for the next attempt.
			for i := range y {
				y[i] = 0
			}
			return nil, fmt.Errorf("%w: pivot %g at permuted index %d", ErrNotPositiveDefinite, dk, k)
		}
		f.d[k] = dk
		f.invd[k] = 1 / dk
	}
	return f, nil
}

// Solve computes x = A⁻¹·b through the cached factors: permute, one
// forward sweep through L, the diagonal scaling, one backward sweep
// through Lᵀ, permute back. x and b must have length N and may alias. It
// never allocates — this is the per-tick hot path of the transient
// thermal solver.
func (f *LDLNumeric) Solve(x, b []float64) {
	s := f.s
	n := s.n
	if len(x) != n || len(b) != n {
		panic("mat: LDL Solve dimension mismatch")
	}
	if f.super {
		if s.par != nil {
			f.solveSuperParallel(x, b)
			return
		}
		w := s.w
		for k := 0; k < n; k++ {
			w[k] = b[s.perm[k]]
		}
		f.solveSuper()
		for k := 0; k < n; k++ {
			x[s.perm[k]] = w[k]
		}
		return
	}
	if s.par != nil {
		f.solveParallel(x, b)
		return
	}
	w := s.w
	for k := 0; k < n; k++ {
		w[k] = b[s.perm[k]]
	}
	for j := 0; j < n; j++ {
		wj := w[j]
		if wj == 0 {
			continue
		}
		for p := s.lp[j]; p < s.lp[j+1]; p++ {
			w[s.li[p]] -= f.lx[p] * wj
		}
	}
	for j := 0; j < n; j++ {
		w[j] *= f.invd[j]
	}
	for j := n - 1; j >= 0; j-- {
		wj := w[j]
		for p := s.lp[j]; p < s.lp[j+1]; p++ {
			wj -= f.lx[p] * w[s.li[p]]
		}
		w[j] = wj
	}
	for k := 0; k < n; k++ {
		x[s.perm[k]] = w[k]
	}
}
