package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// laplacian1D builds the classic tridiagonal SPD matrix for an n-point
// 1-D diffusion problem with Dirichlet ends.
func laplacian1D(n int) *CSR {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 2)
		if i > 0 {
			b.Add(i, i-1, -1)
		}
		if i < n-1 {
			b.Add(i, i+1, -1)
		}
	}
	return b.Build()
}

func TestBuilderSumsDuplicates(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2.5)
	b.Add(1, 0, -1)
	m := b.Build()
	if got := m.At(0, 0); got != 3.5 {
		t.Errorf("duplicate sum = %v, want 3.5", got)
	}
	if got := m.At(1, 0); got != -1 {
		t.Errorf("At(1,0) = %v, want -1", got)
	}
	if got := m.At(1, 1); got != 0 {
		t.Errorf("missing entry = %v, want 0", got)
	}
	if m.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2", m.NNZ())
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range Add")
		}
	}()
	NewBuilder(2).Add(2, 0, 1)
}

func TestCSRSetAndAddAt(t *testing.T) {
	m := laplacian1D(3)
	m.Set(1, 1, 5)
	if got := m.At(1, 1); got != 5 {
		t.Errorf("after Set At(1,1) = %v", got)
	}
	m.AddAt(1, 1, 1)
	if got := m.At(1, 1); got != 6 {
		t.Errorf("after AddAt At(1,1) = %v", got)
	}
}

func TestCSRSetPanicsOutsideStructure(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for Set outside structure")
		}
	}()
	laplacian1D(3).Set(0, 2, 1)
}

func TestMulVecKnown(t *testing.T) {
	m := laplacian1D(3)
	x := []float64{1, 2, 3}
	dst := make([]float64, 3)
	m.MulVec(dst, x)
	want := []float64{0, 0, 4} // [2-2, -1+4-3, -2+6]
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-14 {
			t.Errorf("MulVec[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestDiagonal(t *testing.T) {
	m := laplacian1D(4)
	d := make([]float64, 4)
	m.Diagonal(d)
	for i, v := range d {
		if v != 2 {
			t.Errorf("diag[%d] = %v, want 2", i, v)
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	if !laplacian1D(5).IsSymmetric(0) {
		t.Error("laplacian should be symmetric")
	}
	b := NewBuilder(2)
	b.Add(0, 1, 1)
	b.Add(1, 0, 2)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	if b.Build().IsSymmetric(1e-12) {
		t.Error("asymmetric matrix reported symmetric")
	}
}

func TestSolveCGAgainstLU(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{5, 20, 100} {
		m := laplacian1D(n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		res, err := SolveCG(m, x, b, CGOptions{Tol: 1e-12})
		if err != nil {
			t.Fatalf("n=%d: CG error: %v (res %v)", n, err, res)
		}
		want, err := SolveLU(FromCSR(m), b)
		if err != nil {
			t.Fatalf("n=%d: LU error: %v", n, err)
		}
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, x[i], want[i])
			}
		}
	}
}

func TestSolveCGZeroRHS(t *testing.T) {
	m := laplacian1D(10)
	x := make([]float64, 10)
	for i := range x {
		x[i] = float64(i) // nonzero initial guess
	}
	res, err := SolveCG(m, x, make([]float64, 10), CGOptions{})
	if err != nil {
		t.Fatalf("CG error: %v", err)
	}
	if res.Residual != 0 {
		t.Errorf("residual = %v, want 0", res.Residual)
	}
	for i, v := range x {
		if v != 0 {
			t.Errorf("x[%d] = %v, want 0", i, v)
		}
	}
}

func TestSolveCGWarmStart(t *testing.T) {
	n := 50
	m := laplacian1D(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	cold := make([]float64, n)
	resCold, err := SolveCG(m, cold, b, CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// Warm start from the exact answer should converge immediately.
	warm := append([]float64(nil), cold...)
	resWarm, err := SolveCG(m, warm, b, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if resWarm.Iterations > 1 {
		t.Errorf("warm start took %d iterations (cold %d)", resWarm.Iterations, resCold.Iterations)
	}
}

func TestSolveCGRejectsNonSPD(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, -1)
	b.Add(1, 1, 1)
	m := b.Build()
	x := make([]float64, 2)
	if _, err := SolveCG(m, x, []float64{1, 1}, CGOptions{}); err == nil {
		t.Error("expected error for negative diagonal")
	}
}

func TestSolveCGNoConvergenceBudget(t *testing.T) {
	n := 200
	m := laplacian1D(n)
	bvec := make([]float64, n)
	for i := range bvec {
		bvec[i] = 1
	}
	x := make([]float64, n)
	_, err := SolveCG(m, x, bvec, CGOptions{Tol: 1e-14, MaxIter: 2})
	if err != ErrNoConvergence {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{3, 4}
	if got := Norm2(a); math.Abs(got-5) > 1e-14 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := NormInf([]float64{-7, 2}); got != 7 {
		t.Errorf("NormInf = %v, want 7", got)
	}
	y := []float64{1, 1}
	AXPY(2, a, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("AXPY = %v, want [7 9]", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Errorf("Scale = %v", y)
	}
}

func TestQuickCGSolvesRandomSPD(t *testing.T) {
	// Random diagonally dominant symmetric matrices are SPD; CG must solve
	// them to the requested tolerance.
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(30)
		b := NewBuilder(n)
		rowSum := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.2 {
					v := -r.Float64()
					b.Add(i, j, v)
					b.Add(j, i, v)
					rowSum[i] += -v
					rowSum[j] += -v
				}
			}
		}
		for i := 0; i < n; i++ {
			b.Add(i, i, rowSum[i]+1+r.Float64())
		}
		m := b.Build()
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		if _, err := SolveCG(m, x, rhs, CGOptions{Tol: 1e-10}); err != nil {
			return false
		}
		// Verify the residual directly.
		ax := make([]float64, n)
		m.MulVec(ax, x)
		for i := range ax {
			ax[i] -= rhs[i]
		}
		return Norm2(ax) <= 1e-8*(1+Norm2(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
