// Package stats collects the evaluation metrics of Section V:
//
//   - Hot spots: percentage of sampling intervals with the maximum
//     temperature above the 85 °C threshold (Fig. 6).
//   - Spatial gradients: percentage of intervals where the maximum
//     temperature difference among units exceeds 15 °C (Fig. 7).
//   - Thermal cycles: per-core peak/valley swings exceeding 20 °C,
//     detected over a sliding history (Fig. 7).
//   - Energy: chip and pump energy integrated over time (Figs. 6 and 8).
//   - Throughput: threads completed per unit time (Fig. 8).
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/units"
)

// Paper thresholds.
const (
	HotSpotThreshold  units.Celsius = 85
	GradientThreshold units.Celsius = 15
	CycleThreshold    units.Celsius = 20
)

// cycleTracker detects peak/valley thermal cycles on one core's
// temperature history.
type cycleTracker struct {
	initialized bool
	lastExt     float64 // last confirmed extreme
	prev        float64
	dir         int // +1 rising, -1 falling, 0 unknown
	cycles      int
}

// hysteresisEps filters sensor noise out of direction changes.
const hysteresisEps = 0.25

func (c *cycleTracker) observe(v float64, threshold float64) {
	if !c.initialized {
		c.initialized = true
		c.lastExt = v
		c.prev = v
		return
	}
	// prev tracks the running extreme of the current excursion; a
	// reversal by more than the noise band confirms it as a peak or
	// valley.
	switch c.dir {
	case 0:
		if v > c.prev+hysteresisEps {
			c.dir = +1
			c.prev = v
		} else if v < c.prev-hysteresisEps {
			c.dir = -1
			c.prev = v
		}
	case +1:
		if v > c.prev {
			c.prev = v
		} else if v < c.prev-hysteresisEps {
			// Peak confirmed at prev: swing from the last valley.
			if c.prev-c.lastExt >= threshold {
				c.cycles++
			}
			c.lastExt = c.prev
			c.dir = -1
			c.prev = v
		}
	case -1:
		if v < c.prev {
			c.prev = v
		} else if v > c.prev+hysteresisEps {
			// Valley confirmed at prev.
			if c.lastExt-c.prev >= threshold {
				c.cycles++
			}
			c.lastExt = c.prev
			c.dir = +1
			c.prev = v
		}
	}
}

// Collector accumulates metrics over a run.
type Collector struct {
	HotThreshold   units.Celsius
	GradThreshold  units.Celsius
	CycleThreshold units.Celsius

	// CycleWindow is the sliding-history length (samples) for the
	// window-range cycle metric (the paper keeps "a sliding history
	// window for each core"). Default 50 samples = 5 s at 100 ms ticks.
	CycleWindow int

	samples     int
	hotSamples  int
	gradSamples int
	trackers    []cycleTracker
	rings       [][]float64 // per-core sliding windows
	ringPos     int
	ringFill    int
	cycleHits   int // (core, sample) pairs inside a >threshold window

	chipEnergy units.Joule
	pumpEnergy units.Joule
	simTime    units.Second
	completed  int64

	maxTmax  float64
	sumTmax  float64
	sumGrad  float64
	above80  int
	settings map[int]units.Second
}

// NewCollector returns a collector for n cores with the paper thresholds.
func NewCollector(n int) (*Collector, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: core count %d", n)
	}
	c := &Collector{
		HotThreshold:   HotSpotThreshold,
		GradThreshold:  GradientThreshold,
		CycleThreshold: CycleThreshold,
		CycleWindow:    50,
		trackers:       make([]cycleTracker, n),
		rings:          make([][]float64, n),
		maxTmax:        math.Inf(-1),
		settings:       map[int]units.Second{},
	}
	return c, nil
}

// Sample records one tick. unitTemps is the per-unit (block) temperature
// set used for the spatial-gradient metric; coreTemps drives the per-core
// cycle trackers; tmax is the global die maximum.
func (c *Collector) Sample(tmax units.Celsius, coreTemps, unitTemps []units.Celsius,
	chipPower, pumpPower units.Watt, setting int, dt units.Second, completed int) error {
	if len(coreTemps) != len(c.trackers) {
		return fmt.Errorf("stats: %d core temps for %d trackers", len(coreTemps), len(c.trackers))
	}
	if dt <= 0 {
		return fmt.Errorf("stats: non-positive dt")
	}
	c.samples++
	c.simTime += dt
	if tmax > c.HotThreshold {
		c.hotSamples++
	}
	if tmax > 80 {
		c.above80++
	}
	if float64(tmax) > c.maxTmax {
		c.maxTmax = float64(tmax)
	}
	c.sumTmax += float64(tmax)

	if len(unitTemps) > 0 {
		lo, hi := unitTemps[0], unitTemps[0]
		for _, v := range unitTemps {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		c.sumGrad += float64(hi - lo)
		if hi-lo > c.GradThreshold {
			c.gradSamples++
		}
	}
	for i, v := range coreTemps {
		c.trackers[i].observe(float64(v), float64(c.CycleThreshold))
	}
	// Sliding-window range metric: a (core, sample) pair counts as
	// cycling when the core's recent history spans more than the
	// threshold.
	for i, v := range coreTemps {
		if c.rings[i] == nil {
			c.rings[i] = make([]float64, c.CycleWindow)
		}
		c.rings[i][c.ringPos] = float64(v)
	}
	c.ringPos = (c.ringPos + 1) % c.CycleWindow
	if c.ringFill < c.CycleWindow {
		c.ringFill++
	}
	for i := range c.rings {
		lo, hi := math.Inf(1), math.Inf(-1)
		for k := 0; k < c.ringFill; k++ {
			w := c.rings[i][k]
			if w < lo {
				lo = w
			}
			if w > hi {
				hi = w
			}
		}
		if hi-lo > float64(c.CycleThreshold) {
			c.cycleHits++
		}
	}
	c.chipEnergy += units.Joule(float64(chipPower) * float64(dt))
	c.pumpEnergy += units.Joule(float64(pumpPower) * float64(dt))
	c.settings[setting] += dt
	c.completed += int64(completed)
	return nil
}

// Report is the final metric set.
type Report struct {
	Samples int
	// HotSpotPct is the percentage of time above the 85 °C threshold.
	HotSpotPct float64
	// Above80Pct is the percentage of time above the 80 °C target.
	Above80Pct float64
	// GradientPct is the percentage of time with spatial gradients above
	// 15 °C.
	GradientPct float64
	// CyclePct is the percentage of (core, sample) pairs whose sliding
	// history window spans more than 20 °C (Fig. 7's presentation).
	CyclePct float64
	// CycleEvents is the total count of confirmed peak/valley swings
	// above the threshold (rainflow-style, a complementary view).
	CycleEvents int
	// MeanGradient is the average spatial gradient (°C).
	MeanGradient float64
	// MaxTemp and MeanTemp summarize the Tmax trace (°C).
	MaxTemp, MeanTemp float64
	// ChipEnergy and PumpEnergy in joules; TotalEnergy their sum.
	ChipEnergy, PumpEnergy, TotalEnergy units.Joule
	// Throughput is completed threads per second.
	Throughput float64
	// Completed is the total thread count.
	Completed int64
	// SimTime is the simulated duration.
	SimTime units.Second
	// MeanSetting is the time-weighted average pump setting.
	MeanSetting float64
}

// Report finalizes the metrics.
func (c *Collector) Report() Report {
	r := Report{
		Samples:    c.samples,
		ChipEnergy: c.chipEnergy,
		PumpEnergy: c.pumpEnergy,
		Completed:  c.completed,
		SimTime:    c.simTime,
	}
	r.TotalEnergy = r.ChipEnergy + r.PumpEnergy
	if c.samples == 0 {
		return r
	}
	n := float64(c.samples)
	r.HotSpotPct = 100 * float64(c.hotSamples) / n
	r.Above80Pct = 100 * float64(c.above80) / n
	r.GradientPct = 100 * float64(c.gradSamples) / n
	r.MeanGradient = c.sumGrad / n
	r.MaxTemp = c.maxTmax
	r.MeanTemp = c.sumTmax / n
	for i := range c.trackers {
		r.CycleEvents += c.trackers[i].cycles
	}
	r.CyclePct = 100 * float64(c.cycleHits) / (n * float64(len(c.trackers)))
	if c.simTime > 0 {
		r.Throughput = float64(c.completed) / float64(c.simTime)
	}
	// Accumulate in sorted key order: map iteration order is randomized
	// and would perturb the floating-point sum's low bits from run to run,
	// breaking the engine's byte-identical-output guarantee.
	keys := make([]int, 0, len(c.settings))
	for s := range c.settings {
		keys = append(keys, s)
	}
	sort.Ints(keys)
	var wsum, wtot float64
	for _, s := range keys {
		d := c.settings[s]
		wsum += float64(s) * float64(d)
		wtot += float64(d)
	}
	if wtot > 0 {
		r.MeanSetting = wsum / wtot
	}
	return r
}
