package stats

import (
	"math"
	"testing"

	"repro/internal/units"
)

func sampleN(t *testing.T, c *Collector, tmax units.Celsius, n int) {
	t.Helper()
	cores := make([]units.Celsius, len(c.trackers))
	for i := range cores {
		cores[i] = tmax
	}
	for i := 0; i < n; i++ {
		if err := c.Sample(tmax, cores, cores, 40, 10, 2, 0.1, 1); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNewCollectorValidation(t *testing.T) {
	if _, err := NewCollector(0); err == nil {
		t.Error("expected error for zero cores")
	}
}

func TestHotSpotPercentage(t *testing.T) {
	c, _ := NewCollector(2)
	sampleN(t, c, 90, 25) // above 85
	sampleN(t, c, 70, 75) // below
	r := c.Report()
	if math.Abs(r.HotSpotPct-25) > 1e-9 {
		t.Errorf("hot spot %% = %v, want 25", r.HotSpotPct)
	}
	if math.Abs(r.Above80Pct-25) > 1e-9 {
		t.Errorf("above-80 %% = %v, want 25", r.Above80Pct)
	}
}

func TestGradientPercentage(t *testing.T) {
	c, _ := NewCollector(2)
	cores := []units.Celsius{70, 70}
	// Gradient 20 > 15 for 10 samples.
	for i := 0; i < 10; i++ {
		if err := c.Sample(90, cores, []units.Celsius{70, 90}, 40, 10, 0, 0.1, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Gradient 5 for 30 samples.
	for i := 0; i < 30; i++ {
		if err := c.Sample(75, cores, []units.Celsius{70, 75}, 40, 10, 0, 0.1, 0); err != nil {
			t.Fatal(err)
		}
	}
	r := c.Report()
	if math.Abs(r.GradientPct-25) > 1e-9 {
		t.Errorf("gradient %% = %v, want 25", r.GradientPct)
	}
	wantMean := (10*20.0 + 30*5.0) / 40
	if math.Abs(r.MeanGradient-wantMean) > 1e-9 {
		t.Errorf("mean gradient = %v, want %v", r.MeanGradient, wantMean)
	}
}

func TestCycleDetection(t *testing.T) {
	c, _ := NewCollector(1)
	// One core swinging 60→85→60→85: two >20 °C upswings confirmed, plus
	// downswings; each confirmed extreme with swing ≥20 counts once.
	trace := []float64{60, 70, 85, 75, 60, 70, 85, 75, 60}
	for _, v := range trace {
		temp := units.Celsius(v)
		if err := c.Sample(temp, []units.Celsius{temp}, nil, 40, 10, 0, 0.1, 0); err != nil {
			t.Fatal(err)
		}
	}
	r := c.Report()
	// Rainflow view: 3 confirmed extremes with ≥20 swing (peak 85,
	// valley 60, peak 85); the final descent is unconfirmed.
	if r.CycleEvents != 3 {
		t.Errorf("cycle events = %v, want 3", r.CycleEvents)
	}
	// Window view: from the third sample on, the sliding window spans
	// 60..85 (> 20 °C) — 7 of the 9 samples.
	got := r.CyclePct * float64(r.Samples) / 100
	if math.Abs(got-7) > 1e-9 {
		t.Errorf("cycling samples = %v, want 7", got)
	}
}

func TestSmallSwingsIgnored(t *testing.T) {
	c, _ := NewCollector(1)
	for i := 0; i < 200; i++ {
		v := units.Celsius(70 + 5*math.Sin(float64(i)/5)) // 10 °C swings
		if err := c.Sample(v, []units.Celsius{v}, nil, 40, 10, 0, 0.1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if r := c.Report(); r.CyclePct != 0 {
		t.Errorf("sub-threshold swings counted: %v", r.CyclePct)
	}
}

func TestNoiseDoesNotCreateCycles(t *testing.T) {
	c, _ := NewCollector(1)
	vals := []float64{70, 70.1, 69.9, 70.05, 70.02, 69.95}
	for _, v := range vals {
		temp := units.Celsius(v)
		if err := c.Sample(temp, []units.Celsius{temp}, nil, 40, 10, 0, 0.1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if r := c.Report(); r.CyclePct != 0 {
		t.Errorf("noise created cycles: %v", r.CyclePct)
	}
}

func TestEnergyIntegration(t *testing.T) {
	c, _ := NewCollector(1)
	for i := 0; i < 10; i++ {
		if err := c.Sample(70, []units.Celsius{70}, nil, 40, 20.8, 4, 0.1, 0); err != nil {
			t.Fatal(err)
		}
	}
	r := c.Report()
	if units.RelativeError(float64(r.ChipEnergy), 40) > 1e-9 {
		t.Errorf("chip energy = %v, want 40 J", r.ChipEnergy)
	}
	if units.RelativeError(float64(r.PumpEnergy), 20.8) > 1e-9 {
		t.Errorf("pump energy = %v, want 20.8 J", r.PumpEnergy)
	}
	if units.RelativeError(float64(r.TotalEnergy), 60.8) > 1e-9 {
		t.Errorf("total energy = %v", r.TotalEnergy)
	}
	if r.MeanSetting != 4 {
		t.Errorf("mean setting = %v, want 4", r.MeanSetting)
	}
}

func TestThroughput(t *testing.T) {
	c, _ := NewCollector(1)
	for i := 0; i < 50; i++ {
		if err := c.Sample(70, []units.Celsius{70}, nil, 40, 10, 0, 0.1, 3); err != nil {
			t.Fatal(err)
		}
	}
	r := c.Report()
	if r.Completed != 150 {
		t.Errorf("completed = %d, want 150", r.Completed)
	}
	if units.RelativeError(r.Throughput, 30) > 1e-9 {
		t.Errorf("throughput = %v, want 30/s", r.Throughput)
	}
}

func TestMaxAndMeanTemp(t *testing.T) {
	c, _ := NewCollector(1)
	sampleN(t, c, 70, 5)
	sampleN(t, c, 90, 5)
	r := c.Report()
	if r.MaxTemp != 90 {
		t.Errorf("max temp = %v", r.MaxTemp)
	}
	if math.Abs(r.MeanTemp-80) > 1e-9 {
		t.Errorf("mean temp = %v, want 80", r.MeanTemp)
	}
}

func TestSampleValidation(t *testing.T) {
	c, _ := NewCollector(2)
	if err := c.Sample(70, []units.Celsius{70}, nil, 1, 1, 0, 0.1, 0); err == nil {
		t.Error("expected error for wrong core count")
	}
	if err := c.Sample(70, []units.Celsius{70, 70}, nil, 1, 1, 0, 0, 0); err == nil {
		t.Error("expected error for zero dt")
	}
}

func TestEmptyReport(t *testing.T) {
	c, _ := NewCollector(1)
	r := c.Report()
	if r.Samples != 0 || r.HotSpotPct != 0 || r.Throughput != 0 {
		t.Errorf("empty report not zeroed: %+v", r)
	}
}

func TestMeanSettingWeighted(t *testing.T) {
	c, _ := NewCollector(1)
	for i := 0; i < 30; i++ {
		_ = c.Sample(70, []units.Celsius{70}, nil, 1, 1, 0, 0.1, 0)
	}
	for i := 0; i < 10; i++ {
		_ = c.Sample(70, []units.Celsius{70}, nil, 1, 1, 4, 0.1, 0)
	}
	r := c.Report()
	want := (30*0.0 + 10*4.0) / 40
	if math.Abs(r.MeanSetting-want) > 1e-9 {
		t.Errorf("mean setting = %v, want %v", r.MeanSetting, want)
	}
}
