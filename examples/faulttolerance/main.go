// Fault tolerance: how the variable-flow controller behaves under
// degraded conditions — noisy thermal sensors and a pump stuck at its
// lowest setting — compared to healthy operation. Demonstrates the
// fault-injection API and the CSV trace output.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/coolsim"
)

func run(name string, faults coolsim.Faults, trace bool) {
	sc := coolsim.DefaultScenario()
	sc.Workload = "Web&DB"
	sc.Cooling = coolsim.CoolingVar
	sc.Policy = coolsim.PolicyTALB
	sc.Duration = 30
	sc.Warmup = 5
	sc.Faults = faults

	var r *coolsim.Report
	var err error
	if trace {
		f, ferr := os.Create("trace_" + name + ".csv")
		if ferr != nil {
			log.Fatal(ferr)
		}
		defer f.Close()
		r, err = coolsim.RunTraced(context.Background(), sc, f)
	} else {
		r, err = coolsim.Run(context.Background(), sc)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s Tmax=%6.2f°C  >80°C=%5.1f%%  pumpE=%6.0fJ  meanSetting=%.2f  refits=%d\n",
		name, r.MaxTempC, r.Above80Pct, r.PumpEnergyJ, r.MeanSetting, r.Refits)
}

func main() {
	fmt.Println("Web&DB under the variable-flow controller, healthy vs degraded:")
	run("healthy", coolsim.Faults{}, true)
	run("noisy-sensors", coolsim.Faults{SensorNoiseStdDev: 1.0}, false)
	run("sensor-dropout", coolsim.Faults{SensorDropoutProb: 0.25}, false)
	stuck := 0
	run("pump-stuck-min", coolsim.Faults{PumpStuck: &stuck}, false)
	fmt.Println("\n(healthy run traced to trace_healthy.csv)")
}
