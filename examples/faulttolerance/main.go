// Fault tolerance: how the variable-flow controller behaves under
// degraded conditions — noisy thermal sensors and a pump stuck at its
// lowest setting — compared to healthy operation. Demonstrates the
// fault-injection API and the CSV trace recorder.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/pump"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func run(name string, faults sim.Faults, trace bool) {
	bench, err := workload.ByName("Web&DB")
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Bench = bench
	cfg.Cooling = sim.LiquidVar
	cfg.Policy = sched.TALB
	cfg.Duration = 30
	cfg.Warmup = 5
	cfg.Faults = faults

	s, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var tr *sim.TraceRecorder
	if trace {
		f, err := os.Create("trace_" + name + ".csv")
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tr = sim.NewTraceRecorder(s, f)
	}
	for s.Time() < cfg.Duration {
		if err := s.Step(); err != nil {
			log.Fatal(err)
		}
		if tr != nil && s.Time() >= 0 {
			if err := tr.Record(); err != nil {
				log.Fatal(err)
			}
		}
	}
	if tr != nil {
		if err := tr.Flush(); err != nil {
			log.Fatal(err)
		}
	}
	r := s.Result()
	fmt.Printf("%-14s Tmax=%6.2f°C  >80°C=%5.1f%%  pumpE=%6.0fJ  meanSetting=%.2f  refits=%d\n",
		name, r.MaxTemp, r.Above80Pct, float64(r.PumpEnergy), r.MeanSetting, r.Refits)
}

func main() {
	fmt.Println("Web&DB under the variable-flow controller, healthy vs degraded:")
	run("healthy", sim.Faults{}, true)
	run("noisy-sensors", sim.Faults{SensorNoiseStdDev: 1.0}, false)
	run("sensor-dropout", sim.Faults{SensorDropoutProb: 0.25}, false)
	stuck := pump.Setting(0)
	run("pump-stuck-min", sim.Faults{PumpStuck: &stuck}, false)
	fmt.Println("\n(healthy run traced to trace_healthy.csv)")
}
