// Low-power multimedia/background processing: the paper reports its
// largest relative savings on low-utilization workloads (gzip, MPlayer),
// where worst-case pumping is pure waste. This example runs both
// benchmarks with DPM enabled under the three cooling configurations and
// prints the energy breakdown.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	fmt.Println("workload   cooling  chipE(J)  pumpE(J)  totalE(J)  Tmax(°C)  hot>85(%)")
	for _, wl := range []string{"gzip", "MPlayer"} {
		var base float64
		for _, cooling := range []string{core.CoolingAir, core.CoolingMax, core.CoolingVar} {
			sc := core.DefaultScenario()
			sc.Workload = wl
			sc.Cooling = cooling
			sc.Policy = "talb"
			sc.DPM = true
			sc.Duration = 60
			r, err := core.Run(sc)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %-7s %9.0f %9.0f %10.0f %9.2f %10.2f\n",
				wl, cooling, float64(r.ChipEnergy), float64(r.PumpEnergy),
				float64(r.TotalEnergy), r.MaxTemp, r.HotSpotPct)
			if cooling == core.CoolingMax {
				base = float64(r.TotalEnergy)
			}
			if cooling == core.CoolingVar && base > 0 {
				fmt.Printf("%-10s         variable flow saves %.1f%% of total energy vs max flow\n",
					"", 100*(1-float64(r.TotalEnergy)/base))
			}
		}
	}
}
