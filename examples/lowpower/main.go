// Low-power multimedia/background processing: the paper reports its
// largest relative savings on low-utilization workloads (gzip, MPlayer),
// where worst-case pumping is pure waste. This example runs both
// benchmarks with DPM enabled under the three cooling configurations and
// prints the energy breakdown.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/coolsim"
)

func main() {
	ctx := context.Background()
	fmt.Println("workload   cooling  chipE(J)  pumpE(J)  totalE(J)  Tmax(°C)  hot>85(%)")
	for _, wl := range []string{"gzip", "MPlayer"} {
		var base float64
		for _, cooling := range []string{coolsim.CoolingAir, coolsim.CoolingMax, coolsim.CoolingVar} {
			sc := coolsim.DefaultScenario()
			sc.Workload = wl
			sc.Cooling = cooling
			sc.Policy = coolsim.PolicyTALB
			sc.DPM = true
			sc.Duration = 60
			r, err := coolsim.Run(ctx, sc)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %-7s %9.0f %9.0f %10.0f %9.2f %10.2f\n",
				wl, cooling, r.ChipEnergyJ, r.PumpEnergyJ,
				r.TotalEnergyJ, r.MaxTempC, r.HotSpotPct)
			if cooling == coolsim.CoolingMax {
				base = r.TotalEnergyJ
			}
			if cooling == coolsim.CoolingVar && base > 0 {
				fmt.Printf("%-10s         variable flow saves %.1f%% of total energy vs max flow\n",
					"", 100*(1-r.TotalEnergyJ/base))
			}
		}
	}
}
