// Datacenter day/night shift: the workload intensity drops to 20 % at
// "night" and returns to full intensity at "day". The scenario exercises
// the part of the controller the paper motivates with server workloads:
// the ARMA predictor tracks each regime, the SPRT detects the regime
// changes and triggers predictor reconstruction, and the flow controller
// rides the pump setting down at night and back up in the morning.
package main

import (
	"fmt"
	"log"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	bench, err := workload.ByName("Web&DB")
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Bench = bench
	cfg.Policy = sched.TALB
	cfg.Cooling = sim.LiquidVar
	cfg.Duration = 180 // one compressed day/night/day cycle
	cfg.Warmup = 5
	// Day for the first minute, night for the second, day again.
	cfg.UtilSchedule = func(t units.Second) float64 {
		switch {
		case t < 60:
			return 1.0
		case t < 120:
			return 0.2
		default:
			return 1.0
		}
	}

	s, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("t(s)   Tmax(°C)  pump-setting  refits")
	for s.Time() < cfg.Duration {
		if err := s.Step(); err != nil {
			log.Fatal(err)
		}
		// Report every 10 simulated seconds.
		t := float64(s.Time())
		if t >= 0 && int(t*10)%100 == 0 {
			fmt.Printf("%5.0f  %7.2f   %d             %d\n",
				t, float64(s.Tmax()), s.AppliedSetting(), s.Ctrl.Refits())
		}
	}
	r := s.Result()
	fmt.Printf("\nshift summary: mean setting %.2f, pump energy %.0f J, chip energy %.0f J, %d ARMA refits\n",
		r.MeanSetting, float64(r.PumpEnergy), float64(r.ChipEnergy), r.Refits)
	fmt.Printf("temperature held below target: max observed %.2f °C (target 80 °C)\n", r.MaxTemp)
}
