// Datacenter day/night shift: the workload intensity drops to 20 % at
// "night" and returns to full intensity at "day". The scenario exercises
// the part of the controller the paper motivates with server workloads:
// the ARMA predictor tracks each regime, the SPRT detects the regime
// changes and triggers predictor reconstruction, and the flow controller
// rides the pump setting down at night and back up in the morning.
//
// The per-tick reporting runs on the public streaming API: a
// coolsim.Session yields one Sample per 100 ms tick.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro/coolsim"
)

func main() {
	sc := coolsim.DefaultScenario()
	sc.Workload = "Web&DB"
	sc.Policy = coolsim.PolicyTALB
	sc.Cooling = coolsim.CoolingVar
	sc.Duration = 180 // one compressed day/night/day cycle
	sc.Warmup = 5
	// Day for the first minute, night for the second, day again.
	sc.UtilSchedule = func(t float64) float64 {
		switch {
		case t < 60:
			return 1.0
		case t < 120:
			return 0.2
		default:
			return 1.0
		}
	}

	s, err := coolsim.NewSession(context.Background(), sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("t(s)   Tmax(°C)  pump-setting  refits")
	for {
		sample, err := s.Step()
		if errors.Is(err, coolsim.ErrSessionDone) {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		// Report every 10 simulated seconds.
		if sample.Time >= 0 && int(sample.Time*10)%100 == 0 {
			fmt.Printf("%5.0f  %7.2f   %d             %d\n",
				sample.Time, sample.TmaxC, sample.Setting, sample.Refits)
		}
	}
	r := s.Report()
	fmt.Printf("\nshift summary: mean setting %.2f, pump energy %.0f J, chip energy %.0f J, %d ARMA refits\n",
		r.MeanSetting, r.PumpEnergyJ, r.ChipEnergyJ, r.Refits)
	fmt.Printf("temperature held below target: max observed %.2f °C (target 80 °C)\n", r.MaxTempC)
}
