// Stack comparison: steady-state analysis of the 2- and 4-layer systems
// across the pump's discrete settings, the analysis behind the paper's
// Fig. 5. The 4-layer stack receives 3/5 of the per-cavity flow at every
// setting while dissipating twice the power, so it needs higher settings
// to hold the same maximum temperature.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/coolsim"
)

func main() {
	for _, layers := range []int{2, 4} {
		a, err := coolsim.NewAnalysis(layers, 23, 20)
		if err != nil {
			log.Fatal(err)
		}
		// Full-load power map (active cores, leakage at the target).
		lut, err := a.BuildLUT(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d-layer stack (%d cores, %d cavities, %d microchannels)\n",
			layers, a.Cores(), a.Cavities(), a.Microchannels())
		fmt.Println("  setting  flow/cavity(ml/min)  steady Tmax @ full load (°C)")
		fullIdx := len(lut.Ladder) - 1
		for k, l := range lut.Ladder {
			if l == 1.0 {
				fullIdx = k
			}
		}
		flows := a.SettingFlowsMLMin()
		for s := 0; s < a.NumSettings(); s++ {
			fmt.Printf("  %d        %6.0f               %6.2f\n",
				s, flows[s], lut.TmaxC[s][fullIdx])
		}
		// Thermal asymmetry: the TALB weights the analysis derives.
		w, err := a.BuildWeights(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		lo, hi := w[0], w[0]
		for _, b := range w {
			if b < lo {
				lo = b
			}
			if b > hi {
				hi = b
			}
		}
		fmt.Printf("  TALB thermal weights span %.3f..%.3f (%.1f%% spread)\n\n",
			lo, hi, 100*(hi-lo))
	}
}
