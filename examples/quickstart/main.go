// Quickstart: simulate the paper's flagship configuration — a 2-layer
// 3D UltraSPARC-T1 stack with interlayer microchannel cooling, the
// variable-flow controller and temperature-aware load balancing — on the
// Web-med workload, and print the resulting thermal/energy report.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
)

func main() {
	sc := core.DefaultScenario() // 2-layer, var cooling, TALB, Web-med
	sc.Duration = 30
	sc.Warmup = 5

	fmt.Println("running:", sc.Workload, "on a", sc.Layers, "layer stack with",
		sc.Cooling, "cooling and the", sc.Policy, "scheduler...")
	report, err := core.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	report.WriteSummary(os.Stdout)

	// The headline comparison: the same run at the worst-case flow rate.
	sc.Cooling = core.CoolingMax
	max, err := core.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	saved := 100 * (1 - float64(report.PumpEnergy)/float64(max.PumpEnergy))
	total := 100 * (1 - float64(report.TotalEnergy)/float64(max.TotalEnergy))
	fmt.Printf("\nvs worst-case flow: cooling energy -%.1f%%, total energy -%.1f%%, Tmax %.2f vs %.2f °C\n",
		saved, total, report.MaxTemp, max.MaxTemp)
}
