// Quickstart: simulate the paper's flagship configuration — a 2-layer
// 3D UltraSPARC-T1 stack with interlayer microchannel cooling, the
// variable-flow controller and temperature-aware load balancing — on the
// Web-med workload, and print the resulting thermal/energy report.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/coolsim"
)

func main() {
	ctx := context.Background()
	sc := coolsim.DefaultScenario() // 2-layer, var cooling, TALB, Web-med
	sc.Duration = 30
	sc.Warmup = 5

	fmt.Println("running:", sc.Workload, "on a", sc.Layers, "layer stack with",
		sc.Cooling, "cooling and the", sc.Policy, "scheduler...")
	report, err := coolsim.Run(ctx, sc)
	if err != nil {
		log.Fatal(err)
	}
	report.WriteSummary(os.Stdout)

	// The headline comparison: the same run at the worst-case flow rate.
	sc.Cooling = coolsim.CoolingMax
	max, err := coolsim.Run(ctx, sc)
	if err != nil {
		log.Fatal(err)
	}
	saved := 100 * (1 - report.PumpEnergyJ/max.PumpEnergyJ)
	total := 100 * (1 - report.TotalEnergyJ/max.TotalEnergyJ)
	fmt.Printf("\nvs worst-case flow: cooling energy -%.1f%%, total energy -%.1f%%, Tmax %.2f vs %.2f °C\n",
		saved, total, report.MaxTempC, max.MaxTempC)
}
