package coolsim

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

// TestRunManyBatchedSolves pins the co-scheduling surface: scenarios
// sharing a cached platform, squeezed onto fewer worker slots, report
// batched solves while staying byte-identical to their solo runs.
func TestRunManyBatchedSolves(t *testing.T) {
	ctx := context.Background()
	scs := make([]Scenario, 4)
	for i := range scs {
		scs[i] = warmScenario("Web-med", int64(i+1))
		scs[i].Cooling = CoolingMax // fixed flow: one shared factor key
	}

	want := make([]*Report, len(scs))
	for i, sc := range scs {
		r, err := Run(ctx, sc)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	pc := NewPlatformCache(0)
	var ctr BatchCounters
	got, err := RunMany(ctx, scs, WithPlatformCache(pc), WithWorkers(1),
		WithBatchCounters(&ctr))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].BatchedSolves == 0 {
			t.Errorf("scenario %d: no batched solves in an oversubscribed batch", i)
		}
		// Everything but the batching diagnostics must match the solo run.
		g, w := *got[i], *want[i]
		g.BatchedSolves, w.BatchedSolves = 0, 0
		if !reflect.DeepEqual(g, w) {
			t.Errorf("scenario %d: ganged report differs from solo Run\n got: %+v\nwant: %+v", i, g, w)
		}
	}
	stats := ctr.Stats()
	if stats.Sweeps == 0 || stats.BatchedSolves == 0 {
		t.Fatalf("batch counters empty: %+v", stats)
	}
	if len(stats.BatchWidth) == 0 {
		t.Fatalf("batch width histogram empty: %+v", stats)
	}
	if _, err := json.Marshal(stats); err != nil {
		t.Fatalf("BatchStats must be JSON-ready: %v", err)
	}
}

// TestControlEveryValidation: negative control periods fail with the
// typed sentinel, from both the scenario field and the option.
func TestControlEveryValidation(t *testing.T) {
	sc := warmScenario("gzip", 1)
	sc.ControlEvery = -2
	if err := sc.Validate(); !errors.Is(err, ErrBadControlEvery) {
		t.Fatalf("Validate with ControlEvery=-2: %v, want ErrBadControlEvery", err)
	}
	sc.ControlEvery = 0
	if _, err := Run(context.Background(), sc, WithControlEvery(-1)); !errors.Is(err, ErrBadControlEvery) {
		t.Fatalf("WithControlEvery(-1): %v, want ErrBadControlEvery", err)
	}
}

// TestControlEveryRuns: a relaxed control period executes and still
// controls the pump (the controller decides every n-th tick but observes
// every tick).
func TestControlEveryRuns(t *testing.T) {
	sc := warmScenario("Web-med", 1)
	sc.ControlEvery = 5
	r, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Samples == 0 || r.MeanSetting <= 0 {
		t.Fatalf("control-period run produced no controlled samples: %+v", r)
	}
	// The option overrides the scenario field.
	r2, err := Run(context.Background(), sc, WithControlEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	base := warmScenario("Web-med", 1)
	ref, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	r2.Scenario, ref.Scenario = Scenario{}, Scenario{}
	if !reflect.DeepEqual(r2, ref) {
		t.Fatalf("WithControlEvery(1) should match the default cadence\n got: %+v\nwant: %+v", r2, ref)
	}
}

// TestSolveParallelismBitIdentical: per-solve parallelism never changes
// a report.
func TestSolveParallelismBitIdentical(t *testing.T) {
	sc := warmScenario("Web-high", 3)
	ref, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), sc, WithSolveParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("WithSolveParallelism(4) changed the report\n got: %+v\nwant: %+v", got, ref)
	}
}
