package coolsim

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func quickScenario() Scenario {
	sc := DefaultScenario()
	sc.Duration = 10
	sc.Warmup = 2
	sc.GridNX, sc.GridNY = 12, 10
	return sc
}

func TestRunDefaultScenario(t *testing.T) {
	r, err := Run(context.Background(), quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	if r.Samples == 0 || r.Completed == 0 {
		t.Errorf("empty report: %+v", r)
	}
	if r.MaxTempC < 60 || r.MaxTempC > 100 {
		t.Errorf("implausible Tmax %v", r.MaxTempC)
	}
}

func TestTypedScenarioErrors(t *testing.T) {
	cases := []struct {
		mutate func(*Scenario)
		want   error
	}{
		{func(sc *Scenario) { sc.Workload = "bogus" }, ErrUnknownWorkload},
		{func(sc *Scenario) { sc.Cooling = "freon" }, ErrUnknownCooling},
		{func(sc *Scenario) { sc.Policy = "rr" }, ErrUnknownPolicy},
		{func(sc *Scenario) { sc.Layers = 5 }, ErrBadLayers},
		{func(sc *Scenario) { sc.Solver = "gauss" }, ErrUnknownSolver},
	}
	for _, c := range cases {
		sc := quickScenario()
		c.mutate(&sc)
		if err := sc.Validate(); !errors.Is(err, c.want) {
			t.Errorf("Validate() = %v, want %v", err, c.want)
		}
		if _, err := Run(context.Background(), sc); !errors.Is(err, c.want) {
			t.Errorf("Run() = %v, want %v", err, c.want)
		}
	}
	if err := quickScenario().Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
}

func TestWriteSummary(t *testing.T) {
	r, err := Run(context.Background(), quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{"scenario:", "Tmax observed", "energy:", "throughput:", "controller:"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestRunManyMatchesRun(t *testing.T) {
	sc1 := quickScenario()
	sc2 := quickScenario()
	sc2.Workload = "gzip"
	reports, err := RunMany(context.Background(), []Scenario{sc1, sc2}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports", len(reports))
	}
	solo, err := Run(context.Background(), sc2)
	if err != nil {
		t.Fatal(err)
	}
	if reports[1].ChipEnergyJ != solo.ChipEnergyJ || reports[1].MaxTempC != solo.MaxTempC {
		t.Errorf("RunMany[1] diverges from solo Run: %+v vs %+v", reports[1], solo)
	}
	if reports[0].Scenario.Workload != "Web-med" || reports[1].Scenario.Workload != "gzip" {
		t.Errorf("reports out of input order")
	}
}

func TestRunManyValidatesEagerly(t *testing.T) {
	bad := quickScenario()
	bad.Workload = "bogus"
	_, err := RunMany(context.Background(), []Scenario{quickScenario(), bad})
	if !errors.Is(err, ErrUnknownWorkload) {
		t.Errorf("err = %v, want ErrUnknownWorkload", err)
	}
}

// TestRunManyCancelPrompt is the acceptance check of the context plumbing:
// canceling mid-flight must abort every in-flight scenario within one
// simulated tick and surface ctx.Err(), long before the scenarios'
// nominal durations (an hour of simulated time each) could complete.
func TestRunManyCancelPrompt(t *testing.T) {
	sc := quickScenario()
	sc.Duration = 3600
	sc.Cooling = CoolingMax // no LUT build: runs start immediately
	sc.Policy = PolicyLB
	scs := []Scenario{sc, sc, sc, sc}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errCh := make(chan error, 1)
	go func() {
		_, err := RunMany(ctx, scs, WithWorkers(2))
		errCh <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the first ticks run
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunMany returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunMany did not return promptly after cancellation")
	}
}

func TestRunCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, quickScenario()); !errors.Is(err, context.Canceled) {
		t.Errorf("Run on canceled ctx = %v, want context.Canceled", err)
	}
}

// TestCancelDuringConstruction covers the expensive pre-tick phase: a
// LiquidVar session builds the controller LUT (a steady-state sweep) in
// NewSession, and a context that dies mid-build must abort it promptly
// rather than after the whole sweep.
func TestCancelDuringConstruction(t *testing.T) {
	sc := DefaultScenario() // var cooling at the full 23×20 grid: real LUT build
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := NewSession(ctx, sc)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("NewSession under dying ctx = %v, want DeadlineExceeded", err)
	}
	// The full sweep is 5 settings × 15 ladder points of steady-state
	// solves; aborting must take ~one solve, far under the full build.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("construction abort took %v", elapsed)
	}
}

func TestObserverSeesEveryTick(t *testing.T) {
	sc := quickScenario()
	var n int
	var firstTime, lastTime float64
	var maxSeen float64
	r, err := Run(context.Background(), sc, WithObserver(func(s *Sample) {
		if n == 0 {
			firstTime = s.Time
		}
		lastTime = s.Time
		if s.TmaxC > maxSeen {
			maxSeen = s.TmaxC
		}
		if len(s.LayerMaxC) != 2 || len(s.LayerMeanC) != 2 {
			t.Fatalf("bad layer slice lengths in sample: %+v", s)
		}
		n++
	}))
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up ticks (negative time) stream too; measured ticks match the
	// report's sample count.
	if firstTime >= 0 {
		t.Errorf("first observed tick at t=%v, want warm-up (negative)", firstTime)
	}
	if n <= r.Samples {
		t.Errorf("observer saw %d ticks, want > %d (warm-up included)", n, r.Samples)
	}
	if lastTime < sc.Duration-0.2 {
		t.Errorf("last observed tick at t=%v, want ≈ %v", lastTime, sc.Duration)
	}
	if maxSeen < 60 || maxSeen > 100 {
		t.Errorf("implausible streamed Tmax %v", maxSeen)
	}
}

func TestRunWithFaults(t *testing.T) {
	sc := quickScenario()
	stuck := 0
	sc.Faults = Faults{PumpStuck: &stuck}
	r, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := Run(context.Background(), quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	if r.PumpEnergyJ >= healthy.PumpEnergyJ {
		t.Errorf("pump stuck at min should use less pump energy: stuck %v, healthy %v",
			r.PumpEnergyJ, healthy.PumpEnergyJ)
	}
}

func TestUtilSchedule(t *testing.T) {
	sc := quickScenario()
	sc.Cooling = CoolingMax
	sc.UtilSchedule = func(t float64) float64 { return 0 } // idle system
	idle, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.UtilSchedule = nil
	busy, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if idle.Completed != 0 {
		t.Errorf("idle schedule still completed %d threads", idle.Completed)
	}
	if busy.Completed == 0 {
		t.Error("busy run completed nothing")
	}
}

func TestOptionsOverrideScenario(t *testing.T) {
	sc := quickScenario()
	sc.Duration = 5
	// A different grid via option must beat the scenario's 12×10 and
	// still produce a full run; a bogus solver option must fail typed.
	if _, err := Run(context.Background(), sc, WithGrid(14, 12), WithSolver("cg")); err != nil {
		t.Fatalf("option overrides failed: %v", err)
	}
	if _, err := Run(context.Background(), sc, WithSolver("gauss")); !errors.Is(err, ErrUnknownSolver) {
		t.Errorf("WithSolver(gauss) = %v, want ErrUnknownSolver", err)
	}
	// A 10× coarser tick yields ~10× fewer samples.
	r, err := Run(context.Background(), sc, WithTick(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if r.Samples != 5 {
		t.Errorf("tick=1s over 5s gave %d samples, want 5", r.Samples)
	}
}

func TestWorkloadsComplete(t *testing.T) {
	ws := Workloads()
	if len(ws) != 8 {
		t.Fatalf("workloads = %v", ws)
	}
	if ws[0] != "Web-med" || ws[7] != "MPlayer&Web" {
		t.Errorf("unexpected ordering: %v", ws)
	}
}

func TestAnalysisLifecycle(t *testing.T) {
	a, err := NewAnalysis(2, 12, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Layers() != 2 || a.Cores() != 8 || a.Cavities() != 3 {
		t.Errorf("geometry: layers %d cores %d cavities %d", a.Layers(), a.Cores(), a.Cavities())
	}
	flows := a.SettingFlowsMLMin()
	if len(flows) != a.NumSettings() {
		t.Fatalf("flows len %d, want %d", len(flows), a.NumSettings())
	}
	for s := 1; s < len(flows); s++ {
		if flows[s] <= flows[s-1] {
			t.Errorf("flows not increasing: %v", flows)
		}
	}
	powers := a.SettingPowersW()
	if len(powers) != a.NumSettings() || powers[len(powers)-1] <= powers[0] {
		t.Errorf("implausible pump powers: %v", powers)
	}
	lut, err := a.BuildLUT(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(lut.Ladder) == 0 || len(lut.TmaxC) != a.NumSettings() ||
		len(lut.RequiredSetting) != len(lut.Ladder) {
		t.Errorf("malformed LUT: %+v", lut)
	}
	w, err := a.BuildWeights(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 8 {
		t.Errorf("weights for %d cores", len(w))
	}
	if _, err := NewAnalysis(3, 12, 10); !errors.Is(err, ErrBadLayers) {
		t.Error("expected ErrBadLayers for 3 layers")
	}
}
