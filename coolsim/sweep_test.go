package coolsim

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

// TestSweepExpandCartesian pins the member count and the deterministic
// row-major order (layers outermost, seeds innermost).
func TestSweepExpandCartesian(t *testing.T) {
	sw := Sweep{
		Base:     Scenario{Duration: 5, Warmup: 1},
		Layers:   []int{2, 4},
		Cooling:  []string{CoolingMax, CoolingAir},
		Workload: []string{"gzip", "Web-med", "Web-high"},
		Seeds:    []int64{1, 2},
	}
	if got, want := sw.Count(), 2*2*3*2; got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	scs, err := sw.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(scs) != sw.Count() {
		t.Fatalf("expanded %d members, want %d", len(scs), sw.Count())
	}
	// First member: first value of every axis, base/defaults elsewhere.
	first := scs[0]
	if first.Layers != 2 || first.Cooling != CoolingMax || first.Workload != "gzip" || first.Seed != 1 {
		t.Fatalf("first member = %+v", first)
	}
	if first.Policy != "talb" || first.Duration != 5 || first.Warmup != 1 {
		t.Fatalf("defaults not materialized: %+v", first)
	}
	// Seeds are the innermost axis: member 1 differs from member 0 only
	// in the seed.
	if scs[1].Seed != 2 || scs[1].Workload != "gzip" || scs[1].Layers != 2 {
		t.Fatalf("second member = %+v", scs[1])
	}
	// Layers are the outermost axis: the second half of the grid is the
	// 4-layer copy of the first half.
	half := len(scs) / 2
	for i := 0; i < half; i++ {
		want := scs[i]
		want.Layers = 4
		if !reflect.DeepEqual(scs[half+i], want) {
			t.Fatalf("member %d = %+v, want 4-layer copy of member %d", half+i, scs[half+i], i)
		}
	}
	// Determinism: a second expansion is deep-equal.
	again, err := sw.Expand()
	if err != nil {
		t.Fatalf("re-Expand: %v", err)
	}
	if !reflect.DeepEqual(scs, again) {
		t.Fatal("two expansions of one sweep differ")
	}
}

// TestSweepSkipFilters pins filter semantics: a member matching every
// set field of any filter is dropped, and survivors keep their order.
func TestSweepSkipFilters(t *testing.T) {
	dpmOn := true
	sw := Sweep{
		Base:    Scenario{Duration: 5, Warmup: 1},
		Cooling: []string{CoolingAir, CoolingVar},
		Policy:  []string{PolicyLB, PolicyTALB},
		DPM:     []bool{false, true},
		Skip: []SweepFilter{
			{Cooling: CoolingVar, Policy: PolicyLB}, // drop the var/lb corner
			{DPM: &dpmOn, Cooling: CoolingAir},      // and DPM-on air members
		},
	}
	scs, err := sw.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	// Grid is 2*2*2 = 8; var/lb removes 2 (dpm off+on), air/dpm-on
	// removes 2 → 4 survive.
	if len(scs) != 4 {
		t.Fatalf("got %d members, want 4: %+v", len(scs), scs)
	}
	for i, sc := range scs {
		if sc.Cooling == CoolingVar && sc.Policy == PolicyLB {
			t.Errorf("member %d: filtered var/lb combo survived", i)
		}
		if sc.Cooling == CoolingAir && sc.DPM {
			t.Errorf("member %d: filtered air/dpm combo survived", i)
		}
	}
	// Survivor order is the enumeration order with holes.
	if scs[0].Cooling != CoolingAir || scs[0].Policy != PolicyLB || scs[0].DPM {
		t.Fatalf("first survivor = %+v", scs[0])
	}
}

// TestSweepTooLarge pins the typed oversize rejection and the
// MaxScenarios override.
func TestSweepTooLarge(t *testing.T) {
	seeds := make([]int64, 400)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	sw := Sweep{
		Layers:       []int{2, 4},
		Workload:     []string{"gzip", "Web-med"},
		Seeds:        seeds,
		MaxScenarios: 1000,
	}
	if _, err := sw.Expand(); !errors.Is(err, ErrSweepTooLarge) {
		t.Fatalf("Expand of %d members under limit 1000: err = %v, want ErrSweepTooLarge", sw.Count(), err)
	}
	sw.MaxScenarios = 1600
	if _, err := sw.Expand(); err != nil {
		t.Fatalf("Expand under raised limit: %v", err)
	}
	// The limit applies before any validation work.
	sw.MaxScenarios = 0
	sw.Seeds = make([]int64, DefaultSweepLimit+1)
	if _, err := sw.Expand(); !errors.Is(err, ErrSweepTooLarge) {
		t.Fatalf("default limit: err = %v, want ErrSweepTooLarge", err)
	}
}

// TestSweepInvalidMember: an unfiltered invalid combination fails the
// expansion with the member's typed error; filtering it out succeeds.
func TestSweepInvalidMember(t *testing.T) {
	sw := Sweep{
		Layers:   []int{2, 3},
		Workload: []string{"gzip"},
	}
	if _, err := sw.Expand(); !errors.Is(err, ErrBadLayers) {
		t.Fatalf("err = %v, want ErrBadLayers", err)
	}
	sw.Skip = []SweepFilter{{Layers: 3}}
	scs, err := sw.Expand()
	if err != nil {
		t.Fatalf("Expand with filtered invalid corner: %v", err)
	}
	if len(scs) != 1 || scs[0].Layers != 2 {
		t.Fatalf("got %+v, want the single 2-layer member", scs)
	}
}

// TestSweepCanonicalRoundTrip: every expanded member survives the
// canonical wire encoding (marshal → decode over defaults) unchanged —
// the property that makes a fleet-executed campaign member equal the
// in-process scenario struct, and hence the reports byte-identical.
func TestSweepCanonicalRoundTrip(t *testing.T) {
	sw := Sweep{
		Base:         Scenario{Duration: 7, GridNX: 12, GridNY: 10},
		Layers:       []int{2, 4},
		Cooling:      []string{CoolingAir, CoolingMax, CoolingVar},
		Policy:       []string{PolicyLB, PolicyTALB},
		DPM:          []bool{false, true},
		ControlEvery: []int{0, 5},
		Stepping:     []Stepping{{}, {Mode: "adaptive", ToleranceC: 0.05}},
		Seeds:        []int64{1, 7},
	}
	scs, err := sw.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	for i, sc := range scs {
		data, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("member %d: marshal: %v", i, err)
		}
		back := DefaultScenario()
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&back); err != nil {
			t.Fatalf("member %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(sc, back) {
			t.Fatalf("member %d round-trip drift:\n  expanded: %+v\n  decoded:  %+v", i, sc, back)
		}
	}
}
