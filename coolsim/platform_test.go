package coolsim

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
)

func warmScenario(workload string, seed int64) Scenario {
	sc := DefaultScenario()
	sc.Workload = workload
	sc.Seed = seed
	sc.Duration = 3
	sc.Warmup = 1
	sc.GridNX, sc.GridNY = 12, 10
	return sc
}

// TestSharedPlatformConcurrent is the shared-ownership contract of the
// platform layer: two Sessions plus a RunMany batch, all racing over one
// cached Platform (run under -race in CI), must produce reports
// bit-identical to cold-built runs, while the expensive artifacts —
// flow LUT, TALB weight table, LDLᵀ symbolic analysis — are each built
// exactly once across all of them.
func TestSharedPlatformConcurrent(t *testing.T) {
	ctx := context.Background()
	sessionScs := []Scenario{warmScenario("Web-med", 1), warmScenario("Web-high", 7)}
	batchScs := []Scenario{warmScenario("gzip", 2), warmScenario("Web&DB", 3)}

	// Cold references: every run builds privately.
	cold := map[string]*Report{}
	for _, sc := range append(append([]Scenario{}, sessionScs...), batchScs...) {
		r, err := Run(ctx, sc)
		if err != nil {
			t.Fatal(err)
		}
		cold[sc.Workload] = r
	}

	pc := NewPlatformCache(0)
	warm := make(map[string]*Report)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, 3)

	// Two concurrent sessions stepped to completion.
	for _, sc := range sessionScs {
		wg.Add(1)
		go func(sc Scenario) {
			defer wg.Done()
			ss, err := NewSession(ctx, sc, WithPlatformCache(pc))
			if err != nil {
				errCh <- err
				return
			}
			for {
				if _, err := ss.Step(); err != nil {
					if errors.Is(err, ErrSessionDone) {
						break
					}
					errCh <- err
					return
				}
			}
			mu.Lock()
			warm[sc.Workload] = ss.Report()
			mu.Unlock()
		}(sc)
	}
	// A RunMany batch racing the sessions on the same cache.
	wg.Add(1)
	go func() {
		defer wg.Done()
		reports, err := RunMany(ctx, batchScs, WithPlatformCache(pc), WithWorkers(2))
		if err != nil {
			errCh <- err
			return
		}
		mu.Lock()
		for i, r := range reports {
			warm[batchScs[i].Workload] = r
		}
		mu.Unlock()
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	for name, want := range cold {
		got := warm[name]
		if got == nil {
			t.Fatalf("no warm report for %s", name)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: warm report differs from cold\ncold: %+v\nwarm: %+v", name, want, got)
		}
	}

	st := pc.Stats()
	if st.Platforms != 1 {
		t.Errorf("platforms = %d, want 1 (all scenarios share one stack shape)", st.Platforms)
	}
	// Three lookups total: one per session plus one for the whole batch
	// (RunMany deduplicates its scenarios' specs before resolving).
	if st.Misses != 1 || st.Hits < 2 {
		t.Errorf("hits=%d misses=%d, want exactly 1 miss and >=2 hits", st.Hits, st.Misses)
	}
	if st.LUTBuilds != 1 || st.WeightBuilds != 1 || st.SymbolicBuilds != 1 {
		t.Errorf("builds lut=%d weights=%d symbolic=%d, want exactly 1 each",
			st.LUTBuilds, st.WeightBuilds, st.SymbolicBuilds)
	}
}

// TestPlatformCacheLRU bounds the service cache: beyond maxStacks the
// least-recently-used stack shape is evicted and rebuilt on next use.
func TestPlatformCacheLRU(t *testing.T) {
	ctx := context.Background()
	pc := NewPlatformCache(1)
	two := warmScenario("gzip", 1)
	four := warmScenario("gzip", 1)
	four.Layers = 4
	four.Duration, four.Warmup = 1, 0.2
	two.Duration, two.Warmup = 1, 0.2
	if _, err := Run(ctx, two, WithPlatformCache(pc)); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ctx, four, WithPlatformCache(pc)); err != nil {
		t.Fatal(err)
	}
	st := pc.Stats()
	if st.Platforms != 1 || st.Evictions != 1 {
		t.Errorf("platforms=%d evictions=%d, want 1 and 1", st.Platforms, st.Evictions)
	}
	// The 2-layer platform was evicted: running it again is a miss.
	if _, err := Run(ctx, two, WithPlatformCache(pc)); err != nil {
		t.Fatal(err)
	}
	if got := pc.Stats().Misses; got != 3 {
		t.Errorf("misses = %d, want 3 (re-build after eviction)", got)
	}
}
