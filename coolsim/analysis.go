package coolsim

import (
	"context"
	"fmt"

	"repro/internal/platform"
	"repro/internal/pump"
	"repro/internal/rcnet"
)

// FlowLUT is the flow-rate controller's lookup table in plain-data form:
// the steady-state analysis behind the paper's Fig. 5.
type FlowLUT struct {
	// TargetC is the temperature the controller holds (°C).
	TargetC float64 `json:"target_c"`
	// Ladder is the load scale of each column (fraction of full load).
	Ladder []float64 `json:"ladder"`
	// TmaxC[s][k] is the steady maximum die temperature at pump setting
	// s under ladder load k (°C).
	TmaxC [][]float64 `json:"tmax_c"`
	// RequiredSetting[k] is the minimum pump setting holding ladder load
	// k at or below TargetC (the highest setting if none can).
	RequiredSetting []int `json:"required_setting"`
}

// Analysis exposes the offline steady-state machinery for a liquid-cooled
// stack: the flow LUT and TALB weight sweeps, plus the stack geometry the
// examples and CLIs report. It is a thin view over the same platform
// layer the runtime uses (cmd/lutgen and a live Run therefore can never
// drift apart), and with NewAnalysisCached it reads from — and warms —
// a shared PlatformCache.
type Analysis struct {
	p      *platform.Platform
	layers int
}

// NewAnalysis builds the thermal analysis stack for a liquid-cooled
// system (layers: 2 or 4; nx, ny: thermal grid resolution).
func NewAnalysis(layers, nx, ny int) (*Analysis, error) {
	return NewAnalysisCached(nil, layers, nx, ny)
}

// NewAnalysisCached is NewAnalysis reading through a shared PlatformCache:
// artifacts already built by runs on the same stack are reused, and
// whatever the analysis builds warms later runs. pc may be nil.
func NewAnalysisCached(pc *PlatformCache, layers, nx, ny int) (*Analysis, error) {
	if layers != 2 && layers != 4 {
		return nil, fmt.Errorf("%w: %d (want 2 or 4)", ErrBadLayers, layers)
	}
	spec := platform.Spec{
		Layers: layers, Liquid: true,
		GridNX: nx, GridNY: ny,
		RC: rcnet.DefaultConfig(),
	}
	var (
		p   *platform.Platform
		err error
	)
	if pc != nil {
		p, err = pc.cache.Get(spec)
	} else {
		p, err = platform.New(spec)
	}
	if err != nil {
		return nil, err
	}
	return &Analysis{p: p, layers: layers}, nil
}

// Layers returns the stack's layer count.
func (a *Analysis) Layers() int { return a.layers }

// Cores returns the number of cores in the stack.
func (a *Analysis) Cores() int { return len(a.p.Stack().Cores()) }

// Cavities returns the number of microchannel cavities.
func (a *Analysis) Cavities() int { return a.p.Stack().NumCavities() }

// Microchannels returns the total microchannel count across cavities.
func (a *Analysis) Microchannels() int { return a.p.Stack().TotalChannels() }

// NumSettings returns the pump's discrete setting count; settings are
// numbered 0 (minimum flow) through NumSettings-1 (maximum).
func (a *Analysis) NumSettings() int { return pump.NumSettings }

// SettingFlowsMLMin returns the delivered per-cavity flow of each pump
// setting (ml/min), indexed by setting.
func (a *Analysis) SettingFlowsMLMin() []float64 {
	out := make([]float64, pump.NumSettings)
	for s := range out {
		out[s] = a.p.Pump().PerCavityFlow(pump.Setting(s)).MilliLitersPerMinute()
	}
	return out
}

// SettingPowersW returns the pump's electrical power at each setting (W).
func (a *Analysis) SettingPowersW() []float64 {
	out := make([]float64, pump.NumSettings)
	for s := range out {
		out[s] = float64(pump.Power(pump.Setting(s)))
	}
	return out
}

// BuildLUT runs (or reuses) the Fig. 5-style steady-state sweep and
// returns the controller lookup table. ctx is checked between sweep
// cells, so cancellation aborts a cold build promptly with ctx.Err(); a
// warm platform returns instantly.
func (a *Analysis) BuildLUT(ctx context.Context) (*FlowLUT, error) {
	lut, err := a.p.LUT(ctx)
	if err != nil {
		return nil, err
	}
	out := &FlowLUT{
		TargetC:         float64(lut.Target),
		Ladder:          append([]float64(nil), lut.Ladder...),
		TmaxC:           make([][]float64, len(lut.TmaxAt)),
		RequiredSetting: make([]int, len(lut.Required)),
	}
	for s, row := range lut.TmaxAt {
		out.TmaxC[s] = make([]float64, len(row))
		for k, v := range row {
			out.TmaxC[s][k] = float64(v)
		}
	}
	for k, s := range lut.Required {
		out.RequiredSetting[k] = int(s)
	}
	return out, nil
}

// BuildWeights computes (or reuses) the TALB thermal weight table: one
// base weight per core (mean 1), lower for cores in thermally weak spots.
func (a *Analysis) BuildWeights(ctx context.Context) ([]float64, error) {
	w, err := a.p.Weights(ctx)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), w.Base...), nil
}
