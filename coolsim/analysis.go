package coolsim

import (
	"context"
	"fmt"

	"repro/internal/controller"
	"repro/internal/floorplan"
	"repro/internal/grid"
	"repro/internal/pump"
	"repro/internal/rcnet"
	"repro/internal/sim"
)

// FlowLUT is the flow-rate controller's lookup table in plain-data form:
// the steady-state analysis behind the paper's Fig. 5.
type FlowLUT struct {
	// TargetC is the temperature the controller holds (°C).
	TargetC float64 `json:"target_c"`
	// Ladder is the load scale of each column (fraction of full load).
	Ladder []float64 `json:"ladder"`
	// TmaxC[s][k] is the steady maximum die temperature at pump setting
	// s under ladder load k (°C).
	TmaxC [][]float64 `json:"tmax_c"`
	// RequiredSetting[k] is the minimum pump setting holding ladder load
	// k at or below TargetC (the highest setting if none can).
	RequiredSetting []int `json:"required_setting"`
}

// Analysis exposes the offline steady-state machinery for a liquid-cooled
// stack: the flow LUT and TALB weight sweeps, plus the stack geometry the
// examples and CLIs report.
type Analysis struct {
	stack  *floorplan.Stack
	model  *rcnet.Model
	pump   *pump.Pump
	layers int
}

// NewAnalysis builds the thermal analysis stack for a liquid-cooled
// system (layers: 2 or 4; nx, ny: thermal grid resolution).
func NewAnalysis(layers, nx, ny int) (*Analysis, error) {
	var stack *floorplan.Stack
	switch layers {
	case 2:
		stack = floorplan.NewT1Stack2(true)
	case 4:
		stack = floorplan.NewT1Stack4(true)
	default:
		return nil, fmt.Errorf("%w: %d (want 2 or 4)", ErrBadLayers, layers)
	}
	g, err := grid.Build(stack, grid.DefaultParams(nx, ny))
	if err != nil {
		return nil, err
	}
	m, err := rcnet.New(g, rcnet.DefaultConfig())
	if err != nil {
		return nil, err
	}
	pm, err := pump.New(stack.NumCavities())
	if err != nil {
		return nil, err
	}
	return &Analysis{stack: stack, model: m, pump: pm, layers: layers}, nil
}

// Layers returns the stack's layer count.
func (a *Analysis) Layers() int { return a.layers }

// Cores returns the number of cores in the stack.
func (a *Analysis) Cores() int { return len(a.stack.Cores()) }

// Cavities returns the number of microchannel cavities.
func (a *Analysis) Cavities() int { return a.stack.NumCavities() }

// Microchannels returns the total microchannel count across cavities.
func (a *Analysis) Microchannels() int { return a.stack.TotalChannels() }

// NumSettings returns the pump's discrete setting count; settings are
// numbered 0 (minimum flow) through NumSettings-1 (maximum).
func (a *Analysis) NumSettings() int { return pump.NumSettings }

// SettingFlowsMLMin returns the delivered per-cavity flow of each pump
// setting (ml/min), indexed by setting.
func (a *Analysis) SettingFlowsMLMin() []float64 {
	out := make([]float64, pump.NumSettings)
	for s := range out {
		out[s] = a.pump.PerCavityFlow(pump.Setting(s)).MilliLitersPerMinute()
	}
	return out
}

// SettingPowersW returns the pump's electrical power at each setting (W).
func (a *Analysis) SettingPowersW() []float64 {
	out := make([]float64, pump.NumSettings)
	for s := range out {
		out[s] = float64(pump.Power(pump.Setting(s)))
	}
	return out
}

// BuildLUT runs the Fig. 5-style steady-state sweep and returns the
// controller lookup table. ctx is checked between sweep cells, so
// cancellation aborts the build promptly with ctx.Err().
func (a *Analysis) BuildLUT(ctx context.Context) (*FlowLUT, error) {
	lut, err := controller.BuildLUT(ctx, a.model, a.pump, sim.FullLoadPowers(a.stack),
		controller.TargetTemp, controller.DefaultLadder())
	if err != nil {
		return nil, err
	}
	out := &FlowLUT{
		TargetC:         float64(lut.Target),
		Ladder:          append([]float64(nil), lut.Ladder...),
		TmaxC:           make([][]float64, len(lut.TmaxAt)),
		RequiredSetting: make([]int, len(lut.Required)),
	}
	for s, row := range lut.TmaxAt {
		out.TmaxC[s] = make([]float64, len(row))
		for k, v := range row {
			out.TmaxC[s][k] = float64(v)
		}
	}
	for k, s := range lut.Required {
		out.RequiredSetting[k] = int(s)
	}
	return out, nil
}

// BuildWeights computes the TALB thermal weight table: one base weight
// per core (mean 1), lower for cores in thermally weak spots.
func (a *Analysis) BuildWeights(ctx context.Context) ([]float64, error) {
	w, err := controller.BuildWeights(ctx, a.model, a.pump, 3)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), w.Base...), nil
}
