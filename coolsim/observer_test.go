package coolsim

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
)

// sessionSamples runs sc solo through a Session and returns every tick.
func sessionSamples(t *testing.T, sc Scenario, opts ...Option) []Sample {
	t.Helper()
	ss, err := NewSession(context.Background(), sc, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var out []Sample
	for {
		smp, err := ss.Step()
		if err != nil {
			if errors.Is(err, ErrSessionDone) {
				return out
			}
			t.Fatal(err)
		}
		out = append(out, smp.Clone())
	}
}

// TestMemberObserverMatchesSession: RunMany's per-member tick stream is
// identical to running each scenario alone through a Session — including
// when oversubscription gangs the members into lock-step batches.
func TestMemberObserverMatchesSession(t *testing.T) {
	base := DefaultScenario()
	base.Duration, base.Warmup = 2, 0.5
	scs := make([]Scenario, 3)
	for i := range scs {
		scs[i] = base
		scs[i].Seed = int64(i + 1)
	}

	pc := NewPlatformCache(2)
	var mu sync.Mutex
	got := make([][]Sample, len(scs))
	// One worker over three platform-sharing scenarios forces the gang
	// path; the observer must fire there too.
	_, err := RunMany(context.Background(), scs,
		WithWorkers(1), WithPlatformCache(pc),
		WithMemberObserver(func(member int, smp *Sample) {
			mu.Lock()
			got[member] = append(got[member], smp.Clone())
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}

	for i, sc := range scs {
		want := sessionSamples(t, sc, WithPlatformCache(pc))
		if len(got[i]) != len(want) {
			t.Fatalf("member %d: %d samples, want %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if !reflect.DeepEqual(got[i][j], want[j]) {
				t.Fatalf("member %d tick %d diverges:\n got  %+v\n want %+v", i, j, got[i][j], want[j])
			}
		}
		if sc.ExpectedTicks() != len(want) {
			t.Fatalf("ExpectedTicks()=%d, session emitted %d", sc.ExpectedTicks(), len(want))
		}
	}
}

func TestExpectedTicksDefaults(t *testing.T) {
	if n := DefaultScenario().ExpectedTicks(); n != 650 {
		t.Fatalf("default scenario ExpectedTicks()=%d, want 650 (65 s at 100 ms)", n)
	}
	if n := (Scenario{}).ExpectedTicks(); n != 0 {
		t.Fatalf("invalid scenario ExpectedTicks()=%d, want 0", n)
	}
}
