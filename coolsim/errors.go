package coolsim

import "errors"

// Typed errors for scenario validation and session control flow. All
// errors returned by this package either are one of these sentinels or
// wrap one, so callers can dispatch with errors.Is; canceled runs return
// the context's error (context.Canceled / context.DeadlineExceeded)
// unchanged.
var (
	// ErrUnknownCooling: Scenario.Cooling is not air|max|var.
	ErrUnknownCooling = errors.New("coolsim: unknown cooling mode")
	// ErrUnknownPolicy: Scenario.Policy is not lb|mig|talb.
	ErrUnknownPolicy = errors.New("coolsim: unknown scheduling policy")
	// ErrUnknownWorkload: Scenario.Workload is not a Table II benchmark.
	ErrUnknownWorkload = errors.New("coolsim: unknown workload")
	// ErrUnknownSolver: Scenario.Solver is not auto|direct|cg.
	ErrUnknownSolver = errors.New("coolsim: unknown solver")
	// ErrUnknownStepping: Scenario.Stepping.Mode is not fixed|adaptive.
	ErrUnknownStepping = errors.New("coolsim: unknown stepping mode")
	// ErrBadLayers: Scenario.Layers is not 2 or 4.
	ErrBadLayers = errors.New("coolsim: unsupported layer count")
	// ErrBadControlEvery: the flow-controller decision period
	// (Scenario.ControlEvery / WithControlEvery) is negative.
	ErrBadControlEvery = errors.New("coolsim: bad control period")
	// ErrBadFaults: a Scenario.Faults field is out of range — a negative
	// SensorNoiseStdDev, a SensorDropoutProb outside [0, 1], or a
	// PumpStuck value that is not a valid pump setting.
	ErrBadFaults = errors.New("coolsim: bad fault injection parameters")
	// ErrSweepTooLarge: a Sweep's cartesian grid exceeds its
	// MaxScenarios limit (DefaultSweepLimit when unset).
	ErrSweepTooLarge = errors.New("coolsim: sweep grid too large")
	// ErrSessionDone is returned by Session.Step once the configured
	// duration has elapsed (the io.EOF of the streaming API).
	ErrSessionDone = errors.New("coolsim: session complete")
)
