package coolsim

// Option tunes how a scenario is executed (as opposed to Scenario, which
// describes what is simulated). Options apply to Run, RunMany, RunTraced
// and NewSession.
type Option func(*config)

type config struct {
	workers        int
	gridNX, gridNY int
	solver         string
	tick           float64
	stepping       *Stepping
	observer       func(*Sample)
	memberObserver func(member int, smp *Sample)
	pcache         *PlatformCache
	controlEvery   int
	solveWorkers   int
	batch          *BatchCounters
}

func buildConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// WithWorkers bounds RunMany's worker pool; n ≤ 0 (the default) selects
// runtime.NumCPU(). Reports are byte-identical for any worker count.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithGrid overrides the thermal grid resolution of every scenario in the
// call, taking precedence over Scenario.GridNX/GridNY.
func WithGrid(nx, ny int) Option {
	return func(c *config) { c.gridNX, c.gridNY = nx, ny }
}

// WithSolver overrides the thermal linear solver ("auto", "direct" or
// "cg"), taking precedence over Scenario.Solver.
func WithSolver(name string) Option {
	return func(c *config) { c.solver = name }
}

// WithTick overrides the sampling interval in seconds (default 0.1, the
// paper's 100 ms tick).
func WithTick(seconds float64) Option {
	return func(c *config) { c.tick = seconds }
}

// WithStepper overrides the time-advance engine of every scenario in the
// call, taking precedence over Scenario.Stepping: Stepping{} keeps the
// fixed base-tick loop, Stepping{Mode: "adaptive"} (plus optional
// ToleranceC / MaxStepS knobs) enables adaptive thermal macro-stepping.
// Samples are emitted at the base tick either way.
func WithStepper(st Stepping) Option {
	return func(c *config) { c.stepping = &st }
}

// WithPlatformCache makes the call reuse (and populate) pc's shared
// per-stack artifacts: stack, grid, solver symbolic analysis, flow LUT
// and TALB weights. The first run of each stack shape builds them; every
// later run or session of the same shape — including concurrent ones —
// starts in milliseconds instead of re-deriving seconds of steady-state
// analysis. Results are bit-identical to cold-built runs. Nil (the
// default) keeps the cold path: every run builds privately.
func WithPlatformCache(pc *PlatformCache) Option {
	return func(c *config) { c.pcache = pc }
}

// WithObserver registers a per-tick hook on Run: fn receives every Sample
// of the run, warm-up ticks included (negative Sample.Time). The *Sample
// is reused between ticks — observers that retain it must Clone. The
// observer adds no allocations to the tick path. RunMany ignores it.
func WithObserver(fn func(*Sample)) Option {
	return func(c *config) { c.observer = fn }
}

// WithMemberObserver registers a per-tick hook on RunMany: fn receives
// every Sample of every scenario in the call, tagged with the scenario's
// index in the input slice. Unlike WithObserver it is safe under
// RunMany's concurrency because each member owns a private Sample — but
// fn itself is called concurrently from the worker pool (and from
// lock-stepped gangs), so it must be safe for concurrent use across
// members. Within one member, calls are ordered by tick. The *Sample is
// reused between that member's ticks: Clone to retain. Run, RunTraced
// and NewSession ignore it.
func WithMemberObserver(fn func(member int, smp *Sample)) Option {
	return func(c *config) { c.memberObserver = fn }
}

// WithControlEvery overrides the flow-controller decision cadence (base
// ticks) of every scenario in the call, taking precedence over
// Scenario.ControlEvery. n must be positive (0 restores the scenario's
// own setting); negative values fail with ErrBadControlEvery.
func WithControlEvery(n int) Option {
	return func(c *config) { c.controlEvery = n }
}

// WithSolveParallelism enables level-parallel LDLᵀ factorization and
// triangular solves inside each scenario's thermal model, using up to n
// workers per solve. Results are bit-identical to the serial solver at
// any n; n ≤ 1 (the default) keeps the serial sweeps, which are faster
// below roughly the paper's 115×100 resolution.
func WithSolveParallelism(n int) Option {
	return func(c *config) { c.solveWorkers = n }
}

// WithBatchCounters makes the call report batched-solve statistics into
// ctr: when RunMany co-schedules platform-sharing scenarios over fewer
// worker slots, each lock-stepped tick serves compatible thermal solves
// through one multi-RHS sweep, and ctr counts those sweeps and their
// widths. ctr may be shared across calls and read concurrently.
func WithBatchCounters(ctr *BatchCounters) Option {
	return func(c *config) { c.batch = ctr }
}
