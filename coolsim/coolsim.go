// Package coolsim is the public API of the repro library: it wires the
// thermal model, workload, scheduler, pump and flow-rate controller of
// conf_date_CoskunARBM10 into ready-to-run scenarios without exposing the
// internal substrate packages.
//
// The building blocks are:
//
//   - Scenario: one (stack, cooling, policy, workload) simulation, the
//     unit the paper's figures are built from. Run executes it as a
//     batch; RunMany fans a slice of scenarios over a worker pool.
//   - Session: incremental execution — NewSession + Step yield one
//     Sample per 100 ms tick (temperatures, pump state, power,
//     migrations), the streaming seam behind cmd/coolserved.
//   - Analysis: the offline steady-state sweeps (flow lookup table,
//     thermal weights) in plain-data form.
//
// Every entry point takes a context.Context and honors cancellation
// within one simulated tick. Configuration is a Scenario value plus
// functional options (WithWorkers, WithGrid, WithSolver, WithTick,
// WithStepper, WithObserver, WithPlatformCache, WithControlEvery,
// WithSolveParallelism, WithBatchCounters); failures surface as typed
// errors (ErrUnknownWorkload, ErrUnknownCooling, ...) that wrap into
// errors.Is. Scenario.Stepping/WithStepper select the time-advance
// engine: the default fixed 100 ms loop, or adaptive thermal
// macro-stepping (≤ 0.1 °C from fixed, several-fold faster through
// thermally quiet phases), with samples at the base tick either way.
//
// Runs of the same stack shape can share their expensive setup — grid,
// solver analysis, controller tables — through a PlatformCache; see
// WithPlatformCache. An oversubscribed RunMany additionally
// co-schedules platform-sharing fixed-flow runs so their per-tick
// thermal solves ride one blocked multi-RHS sweep of the shared factor
// — reports stay byte-identical to solo runs at any worker count, and
// Report.BatchedSolves / WithBatchCounters expose what was ganged.
// WithSolveParallelism enables level-parallel factorization and solves
// inside a single run (bit-identical to serial) for paper-resolution
// grids.
package coolsim

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/pump"
	"repro/internal/rcnet"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stepper"
	"repro/internal/units"
	"repro/internal/workload"
)

// Cooling mode names accepted in Scenario.Cooling.
const (
	CoolingAir = "air"
	CoolingMax = "max"
	CoolingVar = "var"
)

// Scheduling policy names accepted in Scenario.Policy.
const (
	PolicyLB        = "lb"
	PolicyMigration = "mig"
	PolicyTALB      = "talb"
)

// Faults injects failure modes for robustness studies. The zero value is
// a healthy system. All fault randomness is seeded from Scenario.Seed, so
// faulty runs are as deterministic as healthy ones.
type Faults struct {
	// PumpStuck, when non-nil, pins the delivered flow to this pump
	// setting regardless of the controller's decisions.
	PumpStuck *int `json:"pump_stuck,omitempty"`
	// SensorNoiseStdDev adds zero-mean Gaussian noise (°C) to every
	// temperature the policies observe; metrics use ground truth.
	SensorNoiseStdDev float64 `json:"sensor_noise_stddev,omitempty"`
	// SensorDropoutProb is the per-tick probability that all sensors
	// return their previous reading.
	SensorDropoutProb float64 `json:"sensor_dropout_prob,omitempty"`
}

// validate checks the fault-injection ranges, wrapping ErrBadFaults.
func (f Faults) validate() error {
	if f.SensorNoiseStdDev < 0 {
		return fmt.Errorf("%w: sensor_noise_stddev %g (want >= 0)",
			ErrBadFaults, f.SensorNoiseStdDev)
	}
	if f.SensorDropoutProb < 0 || f.SensorDropoutProb > 1 {
		return fmt.Errorf("%w: sensor_dropout_prob %g (want 0..1)",
			ErrBadFaults, f.SensorDropoutProb)
	}
	if f.PumpStuck != nil {
		if err := pump.Validate(pump.Setting(*f.PumpStuck)); err != nil {
			return fmt.Errorf("%w: pump_stuck %d (want -1 for off, or 0..%d)",
				ErrBadFaults, *f.PumpStuck, pump.NumSettings-1)
		}
	}
	return nil
}

// Scenario describes one simulation in user-level terms. The zero value
// is not runnable; start from DefaultScenario. The struct marshals to
// JSON (it is the wire format of cmd/coolserved's POST /v1/runs).
type Scenario struct {
	// Layers: 2 or 4.
	Layers int `json:"layers,omitempty"`
	// Cooling: "air", "max" (worst-case flow), or "var" (the paper's
	// controller).
	Cooling string `json:"cooling,omitempty"`
	// Policy: "lb", "mig", or "talb".
	Policy string `json:"policy,omitempty"`
	// Workload is a Table II benchmark name (see Workloads).
	Workload string `json:"workload,omitempty"`
	// Duration and Warmup in seconds. Zero values keep the defaults
	// (60 s measured after a 5 s warm-up).
	Duration float64 `json:"duration,omitempty"`
	Warmup   float64 `json:"warmup,omitempty"`
	// Seed for the synthetic trace (default 1).
	Seed int64 `json:"seed,omitempty"`
	// DPM enables the fixed-timeout sleep policy.
	DPM bool `json:"dpm,omitempty"`
	// GridNX, GridNY default to 23×20 when zero.
	GridNX int `json:"grid_nx,omitempty"`
	GridNY int `json:"grid_ny,omitempty"`
	// Solver selects the thermal linear solver: "auto" (default, cached
	// LDLᵀ direct with CG fallback), "direct", or "cg".
	Solver string `json:"solver,omitempty"`
	// ControlEvery is the flow-controller decision cadence in base ticks
	// (the control period). The controller still observes temperatures
	// every tick; only its Decide step runs at the period. 0 keeps the
	// default of 1 — a decision every 100 ms tick, the paper's behavior.
	// Negative values fail validation with ErrBadControlEvery.
	ControlEvery int `json:"control_every,omitempty"`
	// Stepping selects and tunes the time-advance engine. The zero value
	// is the fixed base-tick loop.
	Stepping Stepping `json:"stepping,omitzero"`
	// Faults injects failure modes (robustness experiments).
	Faults Faults `json:"faults,omitzero"`
	// UtilSchedule, if non-nil, rescales workload intensity over time
	// (e.g. day/night shifts). It receives seconds since measurement
	// start (warm-up has t < 0) and returns a utilization scale. Not
	// serialized.
	UtilSchedule func(t float64) float64 `json:"-"`
}

// Stepping selects the simulator's time-advance engine. The zero value
// is the fixed 100 ms lock-step loop of the paper. Mode "adaptive"
// advances the thermal RC network in long macro-steps (up to MaxStepS)
// while power and flow are stable and a step-doubling error estimate
// stays under ToleranceC, refining back to the base tick around power
// transitions, pump-setting changes and temperature thresholds. Samples
// still arrive at every base tick regardless of the internal stepping;
// the Report's MacroSteps/Refinements counters show what the engine did.
type Stepping struct {
	// Mode: "" or "fixed" (default), or "adaptive".
	Mode string `json:"mode,omitempty"`
	// ToleranceC bounds the estimated per-macro-step temperature error
	// (°C). Default 0.05.
	ToleranceC float64 `json:"tolerance_c,omitempty"`
	// MaxStepS bounds the thermal macro-step (seconds). Default 1.6.
	MaxStepS float64 `json:"max_step_s,omitempty"`
}

// DefaultScenario is a 2-layer TALB(Var) run of Web-med.
func DefaultScenario() Scenario {
	return Scenario{
		Layers: 2, Cooling: CoolingVar, Policy: PolicyTALB, Workload: "Web-med",
		Duration: 60, Warmup: 5, Seed: 1,
	}
}

// Validate reports whether the scenario is runnable, returning the typed
// error of the first bad field (ErrUnknownWorkload, ErrBadLayers, ...).
func (sc Scenario) Validate() error {
	_, err := sc.simConfig(config{})
	return err
}

// PlatformKey returns the canonical identity of the scenario's platform
// model (stack geometry, grid, solver) as an opaque string. Scenarios
// with equal keys share the expensive platform setup (see
// WithPlatformCache); services use the key to route platform-affine
// work onto the same node.
func (sc Scenario) PlatformKey() (string, error) {
	cfg, err := sc.simConfig(config{})
	if err != nil {
		return "", err
	}
	spec, err := cfg.PlatformSpec()
	if err != nil {
		return "", err
	}
	return spec.Canonical().String(), nil
}

// ExpectedTicks returns how many per-tick Samples a full run of the
// scenario emits (warm-up plus measured duration at the base tick) — the
// expected-frame budget behind stream ETAs. 0 if the scenario is invalid.
func (sc Scenario) ExpectedTicks() int {
	cfg, err := sc.simConfig(config{})
	if err != nil || cfg.Tick <= 0 {
		return 0
	}
	return int(float64(cfg.Warmup+cfg.Duration)/float64(cfg.Tick) + 0.5)
}

// Report is the user-facing result of a scenario: flat, unit-suffixed
// fields ready for JSON.
type Report struct {
	Scenario Scenario `json:"scenario"`
	// Samples is the number of measured ticks; SimTimeS the measured
	// duration they span.
	Samples  int     `json:"samples"`
	SimTimeS float64 `json:"sim_time_s"`
	// MaxTempC / MeanTempC summarize the maximum die temperature trace.
	MaxTempC  float64 `json:"max_temp_c"`
	MeanTempC float64 `json:"mean_temp_c"`
	// HotSpotPct is the percentage of time above 85 °C, Above80Pct above
	// the 80 °C target.
	HotSpotPct float64 `json:"hot_spot_pct"`
	Above80Pct float64 `json:"above80_pct"`
	// GradientPct is the percentage of time with spatial gradients above
	// 15 °C; CyclePct the percentage of (core, sample) pairs cycling more
	// than 20 °C; MeanGradientC the average spatial gradient.
	GradientPct   float64 `json:"gradient_pct"`
	CyclePct      float64 `json:"cycle_pct"`
	CycleEvents   int     `json:"cycle_events"`
	MeanGradientC float64 `json:"mean_gradient_c"`
	// Energies in joules over the measurement window.
	ChipEnergyJ  float64 `json:"chip_energy_j"`
	PumpEnergyJ  float64 `json:"pump_energy_j"`
	TotalEnergyJ float64 `json:"total_energy_j"`
	// Throughput in completed threads per second; Completed the total
	// count; PendingAtEnd the backlog left in the queues.
	Throughput   float64 `json:"throughput_per_s"`
	Completed    int64   `json:"completed"`
	PendingAtEnd int     `json:"pending_at_end"`
	// MeanResponseS is the average thread sojourn time in seconds.
	MeanResponseS float64 `json:"mean_response_s"`
	// Controller statistics: time-averaged pump setting, time-averaged
	// per-cavity flow (ml/min), and ARMA predictor reconstructions.
	MeanSetting   float64 `json:"mean_setting"`
	MeanFlowMLMin float64 `json:"mean_flow_mlmin"`
	Refits        int     `json:"refits"`
	// Scheduler activity.
	Migrations   int64 `json:"migrations"`
	BalanceMoves int64 `json:"balance_moves"`
	// Stepping-engine work: base ticks emitted, accepted thermal
	// macro-steps and the ticks they covered, error-estimate rejections
	// re-solved at the base tick, and total thermal solves. A fixed-tick
	// run has MacroSteps = Refinements = 0 and ThermalSolves = BaseTicks.
	BaseTicks     int `json:"base_ticks"`
	MacroSteps    int `json:"macro_steps"`
	MacroTicks    int `json:"macro_ticks"`
	Refinements   int `json:"refinements"`
	ThermalSolves int `json:"thermal_solves"`
	// BatchedSolves is the number of this scenario's thermal solves that
	// were served through shared multi-RHS sweeps — nonzero only when
	// RunMany co-schedules platform-sharing scenarios over fewer worker
	// slots (see WithPlatformCache, WithWorkers, WithBatchCounters).
	// Batching never changes the simulated trajectory.
	BatchedSolves int64 `json:"batched_solves"`
	// SupernodalSolver reports whether the direct solver ran the
	// supernodal dense-panel kernels; Supernodes and MeanPanelWidth
	// describe the partition (0 under CG, or before the first solve).
	// The kernel family never changes the trajectory beyond ≤1e-6 K.
	SupernodalSolver bool    `json:"supernodal_solver"`
	Supernodes       int     `json:"supernodes"`
	MeanPanelWidth   float64 `json:"mean_panel_width"`
}

// Run executes a scenario to completion. Cancel ctx to abort: Run then
// returns ctx.Err() within one simulated tick. WithObserver registers a
// per-tick hook that receives every Sample of the run (including warm-up
// ticks, which have negative Sample.Time).
func Run(ctx context.Context, sc Scenario, opts ...Option) (*Report, error) {
	s, err := NewSession(ctx, sc, opts...)
	if err != nil {
		return nil, err
	}
	return s.drain()
}

// RunMany executes several scenarios on a worker pool (WithWorkers;
// default runtime.NumCPU()) and returns the reports in input order. Every
// scenario owns its simulator state and RNG seeding, so the reports are
// identical to running the scenarios serially, for any worker count.
//
// Cancellation is prompt: once ctx is done no queued scenario starts,
// in-flight scenarios abort at the next tick, and RunMany returns
// ctx.Err(). WithObserver is not supported here (samples of concurrent
// runs would interleave); use Run or Session per scenario instead.
func RunMany(ctx context.Context, scs []Scenario, opts ...Option) ([]*Report, error) {
	cfg := buildConfig(opts)
	cfgs := make([]sim.Config, len(scs))
	for i, sc := range scs {
		simCfg, err := sc.simConfig(cfg)
		if err != nil {
			return nil, fmt.Errorf("scenario %d: %w", i, err)
		}
		cfgs[i] = simCfg
	}
	if cfg.pcache != nil {
		if err := cfg.pcache.attachAll(cfgs); err != nil {
			return nil, err
		}
	}
	if fn := cfg.memberObserver; fn != nil {
		for i := range cfgs {
			member := i
			sp := &sampler{}
			cfgs[i].Observer = func(s *sim.Sim, measured bool) {
				fn(member, sp.fill(s, measured))
			}
		}
	}
	results, err := sim.RunAll(ctx, cfgs, cfg.workers)
	if err != nil {
		return nil, err
	}
	reports := make([]*Report, len(scs))
	for i, r := range results {
		reports[i] = newReport(scs[i], r)
	}
	return reports, nil
}

// RunTraced executes a scenario while streaming a per-tick CSV trace of
// temperatures and pump state to dst (measured ticks only).
func RunTraced(ctx context.Context, sc Scenario, dst io.Writer, opts ...Option) (*Report, error) {
	s, err := NewSession(ctx, sc, opts...)
	if err != nil {
		return nil, err
	}
	tr := sim.NewTraceRecorder(s.sim, dst)
	for {
		smp, err := s.Step()
		if err != nil {
			if errors.Is(err, ErrSessionDone) {
				break
			}
			return nil, err
		}
		if s.cfg.observer != nil {
			s.cfg.observer(smp)
		}
		// The CSV trace keeps its historical shape: measured ticks only.
		if smp.Measured {
			if err := tr.Record(); err != nil {
				return nil, err
			}
		}
	}
	if err := tr.Flush(); err != nil {
		return nil, err
	}
	return s.Report(), nil
}

func newReport(sc Scenario, r *sim.Result) *Report {
	return &Report{
		Scenario:      sc,
		Samples:       r.Samples,
		SimTimeS:      float64(r.SimTime),
		MaxTempC:      r.MaxTemp,
		MeanTempC:     r.MeanTemp,
		HotSpotPct:    r.HotSpotPct,
		Above80Pct:    r.Above80Pct,
		GradientPct:   r.GradientPct,
		CyclePct:      r.CyclePct,
		CycleEvents:   r.CycleEvents,
		MeanGradientC: r.MeanGradient,
		ChipEnergyJ:   float64(r.ChipEnergy),
		PumpEnergyJ:   float64(r.PumpEnergy),
		TotalEnergyJ:  float64(r.TotalEnergy),
		Throughput:    r.Throughput,
		Completed:     r.Completed,
		PendingAtEnd:  r.PendingAtEnd,
		MeanResponseS: float64(r.MeanResponse),
		MeanSetting:   r.MeanSetting,
		MeanFlowMLMin: units.LitersPerMinute(r.MeanFlowLPM).MilliLitersPerMinute(),
		Refits:        r.Refits,
		Migrations:    r.Migrations,
		BalanceMoves:  r.BalanceMoves,
		BaseTicks:     r.Stepping.BaseTicks,
		MacroSteps:    r.Stepping.MacroSteps,
		MacroTicks:    r.Stepping.MacroTicks,
		Refinements:   r.Stepping.Refinements,
		ThermalSolves: r.Stepping.Solves,
		BatchedSolves: r.BatchedSolves,

		SupernodalSolver: r.SupernodalSolver,
		Supernodes:       r.Supernodes,
		MeanPanelWidth:   r.MeanPanelWidth,
	}
}

// WriteSummary renders a human-readable report.
func (r *Report) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "scenario: %d-layer %s / %s / %s (%.0fs)\n",
		r.Scenario.Layers, r.Scenario.Cooling, r.Scenario.Policy,
		r.Scenario.Workload, r.SimTimeS)
	fmt.Fprintf(w, "  Tmax observed:    %.2f °C (mean %.2f °C)\n", r.MaxTempC, r.MeanTempC)
	fmt.Fprintf(w, "  hot spots >85°C:  %.2f %% of time (above 80 °C: %.2f %%)\n",
		r.HotSpotPct, r.Above80Pct)
	fmt.Fprintf(w, "  gradients >15°C:  %.2f %%   cycles >20°C: %.2f %%\n",
		r.GradientPct, r.CyclePct)
	fmt.Fprintf(w, "  energy:           chip %.1f J, pump %.1f J, total %.1f J\n",
		r.ChipEnergyJ, r.PumpEnergyJ, r.TotalEnergyJ)
	fmt.Fprintf(w, "  throughput:       %.1f threads/s (%d completed, %d pending)\n",
		r.Throughput, r.Completed, r.PendingAtEnd)
	if r.Scenario.Cooling == CoolingVar {
		fmt.Fprintf(w, "  controller:       mean setting %.2f, mean flow %.0f ml/min, %d refits\n",
			r.MeanSetting, r.MeanFlowMLMin, r.Refits)
	}
	if r.Migrations > 0 {
		fmt.Fprintf(w, "  migrations:       %d\n", r.Migrations)
	}
	if r.MacroSteps > 0 || r.Refinements > 0 {
		fmt.Fprintf(w, "  stepping:         %d macro-steps covering %d/%d ticks, %d refinements, %d thermal solves\n",
			r.MacroSteps, r.MacroTicks, r.BaseTicks, r.Refinements, r.ThermalSolves)
	}
}

// Workloads returns the Table II benchmark names.
func Workloads() []string {
	out := make([]string, len(workload.TableII))
	for i, b := range workload.TableII {
		out[i] = b.Name
	}
	return out
}

func parseCooling(s string) (sim.CoolingMode, error) {
	switch s {
	case CoolingAir:
		return sim.Air, nil
	case CoolingMax:
		return sim.LiquidMax, nil
	case CoolingVar:
		return sim.LiquidVar, nil
	default:
		return 0, fmt.Errorf("%w: %q (want air|max|var)", ErrUnknownCooling, s)
	}
}

func parsePolicy(s string) (sched.Policy, error) {
	switch s {
	case PolicyLB:
		return sched.LB, nil
	case PolicyMigration, "migration":
		return sched.Migration, nil
	case PolicyTALB:
		return sched.TALB, nil
	default:
		return 0, fmt.Errorf("%w: %q (want lb|mig|talb)", ErrUnknownPolicy, s)
	}
}

// simConfig lowers the user-level scenario plus run options into the
// internal simulator configuration.
func (sc Scenario) simConfig(rc config) (sim.Config, error) {
	if sc.Layers != 2 && sc.Layers != 4 {
		return sim.Config{}, fmt.Errorf("%w: %d (want 2 or 4)", ErrBadLayers, sc.Layers)
	}
	cooling, err := parseCooling(sc.Cooling)
	if err != nil {
		return sim.Config{}, err
	}
	policy, err := parsePolicy(sc.Policy)
	if err != nil {
		return sim.Config{}, err
	}
	bench, err := workload.ByName(sc.Workload)
	if err != nil {
		return sim.Config{}, fmt.Errorf("%w: %q", ErrUnknownWorkload, sc.Workload)
	}
	cfg := sim.DefaultConfig()
	cfg.Layers = sc.Layers
	cfg.Cooling = cooling
	cfg.Policy = policy
	cfg.Bench = bench
	if sc.Seed != 0 {
		cfg.Seed = sc.Seed
	}
	if sc.Duration > 0 {
		cfg.Duration = units.Second(sc.Duration)
	}
	if sc.Warmup > 0 {
		cfg.Warmup = units.Second(sc.Warmup)
	}
	if sc.GridNX > 0 && sc.GridNY > 0 {
		cfg.GridNX, cfg.GridNY = sc.GridNX, sc.GridNY
	}
	cfg.DPMEnabled = sc.DPM
	solverName := sc.Solver
	if rc.solver != "" {
		solverName = rc.solver
	}
	solver, err := rcnet.ParseSolver(solverName)
	if err != nil {
		return sim.Config{}, fmt.Errorf("%w: %q (want auto|direct|cg)", ErrUnknownSolver, solverName)
	}
	cfg.Solver = solver
	stepping := sc.Stepping
	if rc.stepping != nil {
		stepping = *rc.stepping
	}
	kind, err := stepper.ParseKind(stepping.Mode)
	if err != nil {
		return sim.Config{}, fmt.Errorf("%w: %q (want fixed|adaptive)", ErrUnknownStepping, stepping.Mode)
	}
	controlEvery := sc.ControlEvery
	if rc.controlEvery != 0 {
		controlEvery = rc.controlEvery
	}
	if controlEvery < 0 {
		return sim.Config{}, fmt.Errorf("%w: %d (want > 0)", ErrBadControlEvery, controlEvery)
	}
	cfg.Stepper = stepper.Config{
		Kind:         kind,
		ToleranceC:   stepping.ToleranceC,
		MaxStep:      units.Second(stepping.MaxStepS),
		ControlEvery: controlEvery,
	}
	cfg.SolveWorkers = rc.solveWorkers
	if rc.batch != nil {
		cfg.BatchCounters = &rc.batch.inner
	}
	if err := sc.Faults.validate(); err != nil {
		return sim.Config{}, err
	}
	if sc.Faults.PumpStuck != nil {
		ps := pump.Setting(*sc.Faults.PumpStuck)
		cfg.Faults.PumpStuck = &ps
	}
	cfg.Faults.SensorNoiseStdDev = sc.Faults.SensorNoiseStdDev
	cfg.Faults.SensorDropoutProb = sc.Faults.SensorDropoutProb
	if sc.UtilSchedule != nil {
		us := sc.UtilSchedule
		cfg.UtilSchedule = func(t units.Second) float64 { return us(float64(t)) }
	}
	if rc.gridNX > 0 && rc.gridNY > 0 {
		cfg.GridNX, cfg.GridNY = rc.gridNX, rc.gridNY
	}
	if rc.tick > 0 {
		cfg.Tick = units.Second(rc.tick)
	}
	return cfg, nil
}
