package coolsim

import "repro/internal/rcnet"

// BatchCounters accumulates multi-RHS batch-solve statistics across
// RunMany calls (see WithBatchCounters). The zero value is ready; all
// methods are safe for concurrent use, so one counter set can observe
// any number of in-flight calls — cmd/coolserved keeps a process-wide
// one behind GET /v1/metrics.
type BatchCounters struct {
	inner rcnet.BatchCounters
}

// BatchStats is a point-in-time snapshot of BatchCounters, JSON-ready
// for metrics surfaces.
type BatchStats struct {
	// Sweeps is the number of multi-RHS sweeps performed: each solved
	// one factorized system against the right-hand sides of every
	// co-scheduled scenario sharing it.
	Sweeps int64 `json:"sweeps"`
	// BatchedSolves is the number of per-scenario solves served through
	// those sweeps (the sum of their widths).
	BatchedSolves int64 `json:"batched_solves"`
	// BatchWidth histograms the sweeps by width — bucket label ("2",
	// "3", "4", "5-8", ..., "33+") to sweep count. Zero buckets are
	// omitted.
	BatchWidth map[string]int64 `json:"batch_width"`
}

// Stats returns a snapshot. Counters are read atomically; cross-counter
// skew is bounded by one in-flight sweep.
func (c *BatchCounters) Stats() BatchStats {
	snap := c.inner.Snapshot()
	s := BatchStats{
		Sweeps:        snap.Sweeps,
		BatchedSolves: snap.BatchedSolves,
		BatchWidth:    make(map[string]int64, rcnet.NumWidthBuckets),
	}
	for i, n := range snap.Widths {
		if n != 0 {
			s.BatchWidth[rcnet.WidthBucketLabel(i)] = n
		}
	}
	return s
}
