package coolsim

import "fmt"

// DefaultSweepLimit bounds Sweep.Expand when Sweep.MaxScenarios is
// unset: a cartesian grid larger than this is rejected with
// ErrSweepTooLarge instead of being materialized. The limit guards
// against accidentally huge grids (one more ten-value axis multiplies
// the member count by ten); deliberate large campaigns raise
// MaxScenarios explicitly.
const DefaultSweepLimit = 100000

// Sweep is a declarative cartesian scenario grid — the paper's
// exploration (layer counts × cooling classes × policies × workloads ×
// knobs) as one JSON value. It is the wire format of campaign
// submissions (POST /v1/campaigns on cmd/coolserved and
// cmd/cooldispatchd) and the programmatic entry to batch exploration:
// Expand materializes the grid into runnable Scenarios in a
// deterministic order, so two expansions of one spec — on different
// machines, or before and after a dispatcher restart — agree member for
// member.
//
// Each axis slice enumerates the values of one Scenario field; an empty
// axis keeps the Base value. Expansion order is row-major over the axes
// in the order the fields are declared: layers outermost, then cooling,
// policy, workload, dpm, control_every, stepping, and seeds innermost.
// Members matching a Skip filter are dropped after enumeration, so
// filters do not perturb the order of the surviving members.
type Sweep struct {
	// Base carries every knob the axes do not vary: duration, warmup,
	// grid resolution, solver, faults, and the starting values of the
	// axis fields themselves. Unset Base fields inherit
	// DefaultScenario, and expansion materializes those defaults into
	// every member, so a member round-trips unchanged through the
	// canonical scenario encoding used by the fleet journal.
	Base Scenario `json:"base,omitzero"`

	// The axes. Values are validated exactly like a direct submission;
	// an axis value that fails Scenario.Validate fails the whole
	// expansion with the member index and the typed field error.
	Layers       []int      `json:"layers,omitempty"`
	Cooling      []string   `json:"cooling,omitempty"`
	Policy       []string   `json:"policy,omitempty"`
	Workload     []string   `json:"workload,omitempty"`
	DPM          []bool     `json:"dpm,omitempty"`
	ControlEvery []int      `json:"control_every,omitempty"`
	Stepping     []Stepping `json:"stepping,omitempty"`
	Seeds        []int64    `json:"seeds,omitempty"`

	// Skip drops members from the grid: a member matching every set
	// field of any one filter is excluded (e.g. skip the meaningless
	// air-cooled variable-flow corner of a cooling × policy grid).
	Skip []SweepFilter `json:"skip,omitempty"`

	// MaxScenarios overrides DefaultSweepLimit for this sweep. The
	// limit applies to the unfiltered cartesian count — the cost of the
	// expansion itself — not the post-filter member count.
	MaxScenarios int `json:"max_scenarios,omitempty"`
}

// SweepFilter matches a subset of a sweep's grid. Zero-valued fields are
// wildcards; the set fields must all match for the filter to apply.
type SweepFilter struct {
	Layers   int    `json:"layers,omitempty"`
	Cooling  string `json:"cooling,omitempty"`
	Policy   string `json:"policy,omitempty"`
	Workload string `json:"workload,omitempty"`
	// DPM matches members with exactly this DPM setting; nil matches
	// both (JSON: omit the field, or set true/false).
	DPM *bool `json:"dpm,omitempty"`
}

// matches reports whether sc falls inside the filter.
func (f SweepFilter) matches(sc Scenario) bool {
	if f.Layers != 0 && sc.Layers != f.Layers {
		return false
	}
	if f.Cooling != "" && sc.Cooling != f.Cooling {
		return false
	}
	if f.Policy != "" && sc.Policy != f.Policy {
		return false
	}
	if f.Workload != "" && sc.Workload != f.Workload {
		return false
	}
	if f.DPM != nil && sc.DPM != *f.DPM {
		return false
	}
	return true
}

// materialized fills the unset base fields DefaultScenario defines, so
// every expanded member carries its full configuration explicitly and
// the canonical JSON encoding round-trips to an identical Scenario.
func (sc Scenario) materialized() Scenario {
	def := DefaultScenario()
	if sc.Layers == 0 {
		sc.Layers = def.Layers
	}
	if sc.Cooling == "" {
		sc.Cooling = def.Cooling
	}
	if sc.Policy == "" {
		sc.Policy = def.Policy
	}
	if sc.Workload == "" {
		sc.Workload = def.Workload
	}
	if sc.Duration == 0 {
		sc.Duration = def.Duration
	}
	if sc.Warmup == 0 {
		sc.Warmup = def.Warmup
	}
	if sc.Seed == 0 {
		sc.Seed = def.Seed
	}
	return sc
}

// Count returns the unfiltered cartesian size of the grid — the number
// Expand checks against the limit. Empty axes count one.
func (s Sweep) Count() int {
	n := 1
	for _, l := range []int{
		len(s.Layers), len(s.Cooling), len(s.Policy), len(s.Workload),
		len(s.DPM), len(s.ControlEvery), len(s.Stepping), len(s.Seeds),
	} {
		if l > 0 {
			n *= l
		}
	}
	return n
}

// Expand materializes the grid into validated, fully-specified
// Scenarios in the sweep's deterministic order. It fails with
// ErrSweepTooLarge when the unfiltered grid exceeds MaxScenarios
// (default DefaultSweepLimit), and with the member's typed validation
// error when an axis combination is not runnable — filtered members are
// never validated, so Skip is also the escape hatch for invalid
// corners of an otherwise useful grid.
func (s Sweep) Expand() ([]Scenario, error) {
	limit := s.MaxScenarios
	if limit <= 0 {
		limit = DefaultSweepLimit
	}
	total := s.Count()
	if total > limit {
		return nil, fmt.Errorf("%w: %d members (limit %d; raise max_scenarios to override)",
			ErrSweepTooLarge, total, limit)
	}

	// Each axis becomes a list of field setters; empty axes contribute
	// the single no-op so the odometer below walks exactly the declared
	// grid in declaration order, innermost axis last.
	axes := [][]func(*Scenario){
		axisOf(s.Layers, func(sc *Scenario, v int) { sc.Layers = v }),
		axisOf(s.Cooling, func(sc *Scenario, v string) { sc.Cooling = v }),
		axisOf(s.Policy, func(sc *Scenario, v string) { sc.Policy = v }),
		axisOf(s.Workload, func(sc *Scenario, v string) { sc.Workload = v }),
		axisOf(s.DPM, func(sc *Scenario, v bool) { sc.DPM = v }),
		axisOf(s.ControlEvery, func(sc *Scenario, v int) { sc.ControlEvery = v }),
		axisOf(s.Stepping, func(sc *Scenario, v Stepping) { sc.Stepping = v }),
		axisOf(s.Seeds, func(sc *Scenario, v int64) { sc.Seed = v }),
	}
	base := s.Base.materialized()

	out := make([]Scenario, 0, total)
	idx := make([]int, len(axes))
	for i := 0; i < total; i++ {
		sc := base
		for ai, a := range axes {
			a[idx[ai]](&sc)
		}
		skipped := false
		for _, f := range s.Skip {
			if f.matches(sc) {
				skipped = true
				break
			}
		}
		if !skipped {
			if err := sc.Validate(); err != nil {
				return nil, fmt.Errorf("sweep member %d: %w", i, err)
			}
			out = append(out, sc)
		}
		// Advance the odometer, innermost axis fastest.
		for ai := len(axes) - 1; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < len(axes[ai]) {
				break
			}
			idx[ai] = 0
		}
	}
	return out, nil
}

// axisOf lowers one axis to its setter list (a single no-op when empty).
func axisOf[T any](values []T, set func(*Scenario, T)) []func(*Scenario) {
	if len(values) == 0 {
		return []func(*Scenario){func(*Scenario) {}}
	}
	out := make([]func(*Scenario), len(values))
	for i, v := range values {
		v := v
		out[i] = func(sc *Scenario) { set(sc, v) }
	}
	return out
}
