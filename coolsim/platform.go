package coolsim

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
)

// PlatformCache shares the expensive per-stack artifacts — floorplan,
// thermal grid, pump model, the direct solver's symbolic analysis, the
// flow-rate controller's lookup table and the TALB weight table — across
// every Run, RunMany call and Session that uses it (WithPlatformCache).
// Scenarios that only differ in policy, workload, seed, duration or
// faults share one platform; each artifact is built at most once, by the
// first run that needs it, while concurrent runs of the same shape wait
// for that build instead of repeating it.
//
// A PlatformCache is safe for unlimited concurrent use and is designed to
// live for the whole process (cmd/coolserved keeps one so a second job on
// a warm stack skips seconds of setup).
type PlatformCache struct {
	cache *platform.Cache
}

// NewPlatformCache returns a cache bounded to maxStacks platforms;
// maxStacks <= 0 is unbounded. The bound is per stack shape (layers ×
// cooling class × grid × solver config), not per scenario — the default
// experiment space fits in a handful of entries. Beyond the bound the
// least-recently-used platform is evicted (in-flight runs holding it are
// unaffected).
func NewPlatformCache(maxStacks int) *PlatformCache {
	return &PlatformCache{cache: platform.NewCache(maxStacks)}
}

// NewPlatformCacheDir is NewPlatformCache plus on-disk persistence of the
// flow-rate controller's lookup tables and the TALB weight tables: a
// platform whose artifacts were built by a previous process (or a lutgen
// run) sharing dir loads them in milliseconds instead of re-running
// seconds of steady-state analysis, and freshly built tables are saved
// back (atomically, best-effort). Stats().LUTDiskLoads and
// .WeightDiskLoads count the warm starts. cmd/coolserved exposes this as
// -cache-dir so a restarted daemon keeps its sweeps.
func NewPlatformCacheDir(maxStacks int, dir string) *PlatformCache {
	return &PlatformCache{cache: platform.NewDiskCache(maxStacks, dir)}
}

// PlatformCacheStats is a point-in-time snapshot of a PlatformCache.
type PlatformCacheStats struct {
	// Platforms is the number of cached stack shapes.
	Platforms int `json:"platforms"`
	// Hits / Misses count cache lookups; Evictions counts LRU drops.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// SymbolicBuilds / LUTBuilds / WeightBuilds count the expensive
	// artifact constructions across the live platforms. A warm second
	// run leaves all three unchanged.
	SymbolicBuilds int `json:"symbolic_builds"`
	LUTBuilds      int `json:"lut_builds"`
	WeightBuilds   int `json:"weight_builds"`
	// LUTDiskLoads counts LUTs warm-started from the persistence
	// directory (NewPlatformCacheDir) instead of swept;
	// WeightDiskLoads the same for TALB weight tables.
	LUTDiskLoads    int `json:"lut_disk_loads"`
	WeightDiskLoads int `json:"weight_disk_loads"`
	// Supernodes is the total supernode count of the built symbolic
	// analyses across the live platforms; MeanPanelWidth the node-weighted
	// mean panel width of the direct solver's supernodal partitions
	// (0 until an analysis has been built).
	Supernodes     int     `json:"supernodes"`
	MeanPanelWidth float64 `json:"mean_panel_width"`
}

// Stats snapshots the cache counters (the coolserved metrics endpoint
// serves these, and tests assert warm runs build nothing).
func (pc *PlatformCache) Stats() PlatformCacheStats {
	st := pc.cache.Stats()
	return PlatformCacheStats{
		Platforms:       st.Platforms,
		Hits:            st.Hits,
		Misses:          st.Misses,
		Evictions:       st.Evictions,
		SymbolicBuilds:  st.Builds.SymbolicBuilds,
		LUTBuilds:       st.Builds.LUTBuilds,
		WeightBuilds:    st.Builds.WeightBuilds,
		LUTDiskLoads:    st.Builds.LUTDiskLoads,
		WeightDiskLoads: st.Builds.WeightDiskLoads,
		Supernodes:      st.Builds.Supernodes,
		MeanPanelWidth:  st.Builds.MeanPanelWidth,
	}
}

// Prebuild resolves the scenario's platform from the cache and warms
// exactly the artifacts a run of that scenario would build lazily on
// first use: the direct solver's symbolic analysis, the flow LUT for
// variable-flow cooling, the TALB weight table for the TALB policy.
// Builds are deduplicated with concurrent runs, so calling it while the
// platform is already in use never repeats work. The campaign engine
// uses it to build each distinct platform shape once before fanning
// members out.
func (pc *PlatformCache) Prebuild(ctx context.Context, sc Scenario) error {
	simCfg, err := sc.simConfig(config{})
	if err != nil {
		return err
	}
	spec, err := simCfg.PlatformSpec()
	if err != nil {
		return err
	}
	p, err := pc.cache.Get(spec)
	if err != nil {
		return err
	}
	return p.Warm(ctx,
		simCfg.Cooling == sim.LiquidVar && simCfg.FlowPolicy == nil,
		simCfg.Policy == sched.TALB)
}

// attach resolves the scenario's platform from the cache and installs it
// on the lowered simulator config.
func (pc *PlatformCache) attach(simCfg *sim.Config) error {
	spec, err := simCfg.PlatformSpec()
	if err != nil {
		return err
	}
	p, err := pc.cache.Get(spec)
	if err != nil {
		return err
	}
	simCfg.Platform = p
	return nil
}

// attachAll resolves the platforms of a RunMany batch: the distinct specs
// are built concurrently (a heterogeneous batch must not pay its grid
// builds serially — without a cache those happened inside the parallel
// workers), then every config gets its platform.
func (pc *PlatformCache) attachAll(cfgs []sim.Config) error {
	specs := make([]platform.Spec, len(cfgs))
	first := map[platform.Spec]int{}
	for i := range cfgs {
		spec, err := cfgs[i].PlatformSpec()
		if err != nil {
			return fmt.Errorf("scenario %d: %w", i, err)
		}
		specs[i] = spec
		if _, ok := first[spec]; !ok {
			first[spec] = i
		}
	}
	resolved := make(map[platform.Spec]*platform.Platform, len(first))
	errs := make([]error, len(cfgs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for spec, i := range first {
		wg.Add(1)
		go func(spec platform.Spec, i int) {
			defer wg.Done()
			p, err := pc.cache.Get(spec)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[i] = err
				return
			}
			resolved[spec] = p
		}(spec, i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("scenario %d: %w", i, err)
		}
	}
	for i := range cfgs {
		cfgs[i].Platform = resolved[specs[i]]
	}
	return nil
}
