package coolsim_test

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"repro/coolsim"
)

func steppingScenario() coolsim.Scenario {
	sc := coolsim.DefaultScenario()
	sc.Workload = "Web-med"
	sc.Duration = 5
	sc.Warmup = 1
	sc.GridNX, sc.GridNY = 12, 10
	return sc
}

// TestSteppingWireField: the stepping knob round-trips through the
// Scenario JSON wire format (the coolserved submit body).
func TestSteppingWireField(t *testing.T) {
	sc := steppingScenario()
	sc.Stepping = coolsim.Stepping{Mode: "adaptive", ToleranceC: 0.02, MaxStepS: 0.8}
	buf, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	var back coolsim.Scenario
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Stepping != sc.Stepping {
		t.Errorf("stepping round-trip: %+v vs %+v", back.Stepping, sc.Stepping)
	}
	// Fixed default stays off the wire.
	buf, err = json.Marshal(steppingScenario())
	if err != nil {
		t.Fatal(err)
	}
	if jsonHas(buf, "stepping") {
		t.Errorf("zero Stepping serialized: %s", buf)
	}
}

func jsonHas(buf []byte, key string) bool {
	var m map[string]any
	if err := json.Unmarshal(buf, &m); err != nil {
		return false
	}
	_, ok := m[key]
	return ok
}

// TestSteppingUnknownMode: a typoed mode fails validation with the typed
// error before any simulation work happens.
func TestSteppingUnknownMode(t *testing.T) {
	sc := steppingScenario()
	sc.Stepping.Mode = "warp"
	if err := sc.Validate(); !errors.Is(err, coolsim.ErrUnknownStepping) {
		t.Errorf("Validate() = %v, want ErrUnknownStepping", err)
	}
}

// TestWithStepperReportCounters: an adaptive run reports its stepping
// work, a fixed run reports the degenerate counters, and the two reports
// agree on the physics within the documented tolerance.
func TestWithStepperReportCounters(t *testing.T) {
	ctx := context.Background()
	sc := steppingScenario()
	fixed, err := coolsim.Run(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := coolsim.Run(ctx, sc, coolsim.WithStepper(coolsim.Stepping{Mode: "adaptive"}))
	if err != nil {
		t.Fatal(err)
	}
	if fixed.MacroSteps != 0 || fixed.Refinements != 0 || fixed.ThermalSolves != fixed.BaseTicks {
		t.Errorf("fixed counters: %d macro, %d refinements, %d solves / %d ticks",
			fixed.MacroSteps, fixed.Refinements, fixed.ThermalSolves, fixed.BaseTicks)
	}
	if adaptive.BaseTicks != fixed.BaseTicks {
		t.Errorf("base ticks differ: %d vs %d", adaptive.BaseTicks, fixed.BaseTicks)
	}
	if adaptive.Samples != fixed.Samples {
		t.Errorf("samples differ: %d vs %d", adaptive.Samples, fixed.Samples)
	}
	if d := math.Abs(adaptive.MaxTempC - fixed.MaxTempC); d > 0.1 {
		t.Errorf("MaxTempC differs by %.3f °C", d)
	}
	if d := math.Abs(adaptive.MeanTempC - fixed.MeanTempC); d > 0.1 {
		t.Errorf("MeanTempC differs by %.3f °C", d)
	}
}

// TestSessionAdaptiveSamplesAtBaseTick: a streaming session under the
// adaptive engine still yields one sample per 100 ms base tick, with
// strictly advancing timestamps.
func TestSessionAdaptiveSamplesAtBaseTick(t *testing.T) {
	sc := steppingScenario()
	sc.Stepping.Mode = "adaptive"
	s, err := coolsim.NewSession(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(-1)
	n := 0
	for {
		smp, err := s.Step()
		if err != nil {
			if errors.Is(err, coolsim.ErrSessionDone) {
				break
			}
			t.Fatal(err)
		}
		if smp.Time <= prev {
			t.Fatalf("sample %d: time %g did not advance past %g", n, smp.Time, prev)
		}
		if n > 0 && math.Abs(smp.Time-prev-0.1) > 1e-9 {
			t.Fatalf("sample %d: tick spacing %g, want 0.1", n, smp.Time-prev)
		}
		prev = smp.Time
		n++
	}
	// 1 s warm-up + 5 s measured at 100 ms.
	if n != 60 {
		t.Errorf("streamed %d samples, want 60", n)
	}
}
