package coolsim

import (
	"errors"
	"testing"
)

func intp(v int) *int { return &v }

// TestFaultsValidation pins the satellite guarantee: fault-injection
// parameters are range-checked at every Run/Session entry point, via
// the typed ErrBadFaults sentinel.
func TestFaultsValidation(t *testing.T) {
	cases := []struct {
		name   string
		faults Faults
		bad    bool
	}{
		{"zero value", Faults{}, false},
		{"valid noise", Faults{SensorNoiseStdDev: 0.5}, false},
		{"valid dropout", Faults{SensorDropoutProb: 0.25}, false},
		{"dropout at 1", Faults{SensorDropoutProb: 1}, false},
		{"pump stuck off", Faults{PumpStuck: intp(-1)}, false},
		{"pump stuck max", Faults{PumpStuck: intp(4)}, false},
		{"negative noise", Faults{SensorNoiseStdDev: -0.1}, true},
		{"negative dropout", Faults{SensorDropoutProb: -0.1}, true},
		{"dropout above 1", Faults{SensorDropoutProb: 1.5}, true},
		{"pump stuck too high", Faults{PumpStuck: intp(5)}, true},
		{"pump stuck too low", Faults{PumpStuck: intp(-2)}, true},
	}
	for _, tc := range cases {
		sc := DefaultScenario()
		sc.Faults = tc.faults
		err := sc.Validate()
		if tc.bad {
			if !errors.Is(err, ErrBadFaults) {
				t.Errorf("%s: err = %v, want ErrBadFaults", tc.name, err)
			}
		} else if err != nil {
			t.Errorf("%s: unexpected err %v", tc.name, err)
		}
	}
}

// TestPlatformKey: scenarios sharing a stack shape share a key (they
// can share platform artifacts and fleet routing); different shapes get
// different keys; invalid scenarios refuse to produce one.
func TestPlatformKey(t *testing.T) {
	a := DefaultScenario()
	k1, err := a.PlatformKey()
	if err != nil || k1 == "" {
		t.Fatalf("PlatformKey: %q, %v", k1, err)
	}
	// Same shape, different workload/seed: same key.
	b := DefaultScenario()
	b.Workload = "gzip"
	b.Seed = 99
	k2, err := b.PlatformKey()
	if err != nil || k2 != k1 {
		t.Fatalf("same shape keys differ: %q vs %q (%v)", k1, k2, err)
	}
	// Different layer count: different key.
	c := DefaultScenario()
	c.Layers = 4
	k3, err := c.PlatformKey()
	if err != nil || k3 == k1 {
		t.Fatalf("different shape shares key %q (%v)", k3, err)
	}
	// Different grid: different key.
	d := DefaultScenario()
	d.GridNX, d.GridNY = 12, 10
	k4, err := d.PlatformKey()
	if err != nil || k4 == k1 {
		t.Fatalf("different grid shares key %q (%v)", k4, err)
	}
	// Invalid scenario: typed error, no key.
	e := DefaultScenario()
	e.Layers = 3
	if _, err := e.PlatformKey(); !errors.Is(err, ErrBadLayers) {
		t.Fatalf("invalid scenario key err = %v", err)
	}
}
