package coolsim

import (
	"errors"
	"fmt"
)

// ErrEmptyCampaign: a Campaign names neither an explicit scenario list
// nor a sweep spec (or names both).
var ErrEmptyCampaign = errors.New("coolsim: campaign needs exactly one of scenarios or sweep")

// Campaign is the submission form of a batch exploration — the wire
// body of POST /v1/campaigns on both coolserved and cooldispatchd, and
// the programmatic entry used by the campaign engine. A campaign is
// either an explicit scenario list or a declarative Sweep grid; Expand
// lowers both to the same thing, a validated scenario slice in a
// deterministic member order.
type Campaign struct {
	// Name is a free-form label carried through status views and the
	// results tree manifest.
	Name string `json:"name,omitempty"`
	// Scenarios is the explicit member list. Unset fields of each entry
	// inherit DefaultScenario, exactly like a POST /v1/runs body.
	Scenarios []Scenario `json:"scenarios,omitempty"`
	// Sweep is the cartesian alternative. Exactly one of Scenarios and
	// Sweep must be set.
	Sweep *Sweep `json:"sweep,omitempty"`
	// MaxAttempts is the per-member execution attempt bound on the
	// fleet path (0 = dispatcher default); ignored by in-process runs.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// Priority is the fleet booking tier of the members: "bulk" (the
	// campaign default — interactive runs book first) or "interactive".
	Priority string `json:"priority,omitempty"`
}

// Expand lowers the campaign to its member scenarios: the sweep's
// deterministic expansion, or the explicit list with defaults
// materialized and every entry validated. Member order is the order a
// results stream and the durable results tree use.
func (c Campaign) Expand() ([]Scenario, error) {
	switch {
	case len(c.Scenarios) > 0 && c.Sweep != nil:
		return nil, ErrEmptyCampaign
	case c.Sweep != nil:
		return c.Sweep.Expand()
	case len(c.Scenarios) > 0:
		out := make([]Scenario, len(c.Scenarios))
		for i, sc := range c.Scenarios {
			sc = sc.materialized()
			if err := sc.Validate(); err != nil {
				return nil, fmt.Errorf("campaign scenario %d: %w", i, err)
			}
			out[i] = sc
		}
		return out, nil
	}
	return nil, ErrEmptyCampaign
}
