package coolsim

import (
	"bytes"
	"context"
	"encoding/csv"
	"errors"
	"strings"
	"testing"
)

func TestSessionStepsToCompletion(t *testing.T) {
	sc := quickScenario()
	sc.Duration = 5
	sc.Warmup = 1
	ss, err := NewSession(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	ticks := 0
	for {
		smp, err := ss.Step()
		if errors.Is(err, ErrSessionDone) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if smp.TmaxC < 20 || smp.TmaxC > 120 {
			t.Fatalf("implausible tick Tmax %v", smp.TmaxC)
		}
		if smp.Setting < 0 || smp.FlowMLMin <= 0 {
			t.Fatalf("liquid run without flow: %+v", smp)
		}
		ticks++
	}
	if !ss.Done() {
		t.Error("Done() = false after ErrSessionDone")
	}
	// (1 s warm-up + 5 s measured) / 0.1 s tick = 60 ticks.
	if ticks != 60 {
		t.Errorf("stepped %d ticks, want 60", ticks)
	}
	if _, err := ss.Step(); !errors.Is(err, ErrSessionDone) {
		t.Errorf("Step after completion = %v, want ErrSessionDone", err)
	}
	r := ss.Report()
	if r.Samples != 50 {
		t.Errorf("report samples = %d, want 50 measured ticks", r.Samples)
	}
}

func TestSessionMatchesRun(t *testing.T) {
	sc := quickScenario()
	sc.Duration = 5
	batch, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewSession(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := ss.Step(); err != nil {
			if errors.Is(err, ErrSessionDone) {
				break
			}
			t.Fatal(err)
		}
	}
	stepped := ss.Report()
	if batch.ChipEnergyJ != stepped.ChipEnergyJ || batch.MaxTempC != stepped.MaxTempC ||
		batch.Completed != stepped.Completed {
		t.Errorf("session diverges from batch Run:\nbatch   %+v\nstepped %+v", batch, stepped)
	}
}

func TestSessionCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ss, err := NewSession(ctx, quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Step(); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := ss.Step(); !errors.Is(err, context.Canceled) {
		t.Errorf("Step after cancel = %v, want context.Canceled", err)
	}
}

func TestSampleClone(t *testing.T) {
	ss, err := NewSession(context.Background(), quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	smp, err := ss.Step()
	if err != nil {
		t.Fatal(err)
	}
	clone := smp.Clone()
	before := clone.LayerMaxC[0]
	smp.LayerMaxC[0] = -999 // simulate the next tick overwriting
	if clone.LayerMaxC[0] != before {
		t.Error("Clone shares slice storage with the live sample")
	}
}

// TestSessionFillAllocFree pins the streaming seam's overhead: refreshing
// the per-tick Sample from simulator state must not allocate, so Session
// streaming cannot regress the allocation-free tick loop of PR 1/2.
func TestSessionFillAllocFree(t *testing.T) {
	ss, err := NewSession(context.Background(), quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Step(); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() { ss.smp.fill(ss.sim, true) }); allocs != 0 {
		t.Errorf("Session fill allocates %.0f objects per tick, want 0", allocs)
	}
}

func TestRunTraced(t *testing.T) {
	sc := quickScenario()
	sc.Duration = 5
	var buf bytes.Buffer
	r, err := RunTraced(context.Background(), sc, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Samples == 0 {
		t.Fatal("no samples")
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + one row per measured tick.
	if len(rows) != r.Samples+1 {
		t.Errorf("trace rows = %d, want %d", len(rows)-1, r.Samples)
	}
}

func TestRunTracedMatchesRun(t *testing.T) {
	sc := quickScenario()
	sc.Duration = 5
	plain, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	traced, err := RunTraced(context.Background(), sc, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if plain.ChipEnergyJ != traced.ChipEnergyJ || plain.MaxTempC != traced.MaxTempC {
		t.Error("tracing changed the simulation results")
	}
}

func TestRunTracedValidates(t *testing.T) {
	sc := quickScenario()
	sc.Cooling = "plasma"
	var buf bytes.Buffer
	if _, err := RunTraced(context.Background(), sc, &buf); !errors.Is(err, ErrUnknownCooling) {
		t.Errorf("err = %v, want ErrUnknownCooling", err)
	}
}
