package coolsim

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/units"
)

// Sample is the per-tick observation a Session yields: the state the
// batch-only Report hides. Fields are plain and JSON-tagged; Sample is
// the NDJSON line format of cmd/coolserved's stream endpoint.
//
// The Session reuses one Sample (including its slices) across ticks to
// keep the streaming path allocation-free — callers that retain a Sample
// beyond the next Step must Clone it.
type Sample struct {
	// Time in seconds since measurement start: the simulation clock at
	// the end of the tick (at or below zero while warming up).
	Time float64 `json:"t_s"`
	// Measured reports whether this tick counts toward the Report's
	// measurement window (ticks that start at t ≥ 0). The number of
	// Measured samples in a full session equals Report.Samples.
	Measured bool `json:"measured"`
	// TmaxC is the maximum die temperature.
	TmaxC float64 `json:"tmax_c"`
	// LayerMaxC / LayerMeanC are per-stack-layer hottest-sensor and mean
	// temperatures, index 0 the bottom layer.
	LayerMaxC  []float64 `json:"layer_max_c"`
	LayerMeanC []float64 `json:"layer_mean_c"`
	// Setting is the pump setting actually delivering flow (after
	// transition delays and faults); -1 for air-cooled runs.
	Setting int `json:"setting"`
	// FlowMLMin is the delivered per-cavity flow in ml/min.
	FlowMLMin float64 `json:"flow_mlmin"`
	// ChipPowerW and PumpPowerW are the powers drawn during the tick.
	ChipPowerW float64 `json:"chip_w"`
	PumpPowerW float64 `json:"pump_w"`
	// Migrations is the cumulative thread migration count.
	Migrations int64 `json:"migrations"`
	// Refits is the cumulative ARMA predictor reconstruction count.
	Refits int `json:"refits"`
}

// Clone returns a deep copy safe to retain across Steps.
func (s *Sample) Clone() Sample {
	c := *s
	c.LayerMaxC = append([]float64(nil), s.LayerMaxC...)
	c.LayerMeanC = append([]float64(nil), s.LayerMeanC...)
	return c
}

// sampler owns one reused Sample plus the scratch needed to fill it from
// a simulator without allocating — the Session's own refill path, also
// stamped out per member by RunMany's WithMemberObserver wiring.
type sampler struct {
	sample    Sample
	layerMax  []units.Celsius
	layerMean []units.Celsius
}

// size allocates the per-layer slices once, on first use.
func (sp *sampler) size(n int) {
	if len(sp.layerMax) == n {
		return
	}
	sp.layerMax = make([]units.Celsius, n)
	sp.layerMean = make([]units.Celsius, n)
	sp.sample.LayerMaxC = make([]float64, n)
	sp.sample.LayerMeanC = make([]float64, n)
}

// fill refreshes the reused Sample from the simulator state. It must not
// allocate: BenchmarkSessionStep holds the streaming path to the same
// 0 B/op overhead budget as the underlying sim tick.
func (sp *sampler) fill(s *sim.Sim, measured bool) *Sample {
	sp.size(s.NumLayers())
	sp.sample.Time = float64(s.Time())
	sp.sample.Measured = measured
	sp.sample.TmaxC = float64(s.Tmax())
	// Lengths match by construction; the error path is unreachable.
	_ = s.LayerTempsInto(sp.layerMax, sp.layerMean)
	for i := range sp.layerMax {
		sp.sample.LayerMaxC[i] = float64(sp.layerMax[i])
		sp.sample.LayerMeanC[i] = float64(sp.layerMean[i])
	}
	sp.sample.Setting = s.DeliveredSetting()
	sp.sample.FlowMLMin = s.DeliveredFlow().MilliLitersPerMinute()
	sp.sample.ChipPowerW = float64(s.ChipPower())
	sp.sample.PumpPowerW = float64(s.PumpPower())
	sp.sample.Migrations = s.Migrations()
	sp.sample.Refits = s.Refits()
	return &sp.sample
}

// Session is an incrementally-executed scenario: each Step advances one
// 100 ms tick and yields a Sample, until ErrSessionDone. Use it to watch
// a run in flight (live dashboards, the coolserved stream endpoint, custom
// stopping rules) where Run only reports at the end.
//
// A Session is not safe for concurrent use.
type Session struct {
	ctx      context.Context
	sc       Scenario
	cfg      config
	sim      *sim.Sim
	duration units.Second
	smp      sampler
	done     bool
}

// NewSession assembles a scenario for incremental execution. The context
// is checked on every Step: canceling it makes Step (and any Run driving
// the session) return ctx.Err() within one tick.
func NewSession(ctx context.Context, sc Scenario, opts ...Option) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := buildConfig(opts)
	simCfg, err := sc.simConfig(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.pcache != nil {
		if err := cfg.pcache.attach(&simCfg); err != nil {
			return nil, err
		}
	}
	s, err := sim.New(ctx, simCfg)
	if err != nil {
		return nil, err
	}
	ss := &Session{
		ctx:      ctx,
		sc:       sc,
		cfg:      cfg,
		sim:      s,
		duration: simCfg.Duration,
	}
	ss.smp.size(s.NumLayers())
	return ss, nil
}

// Step advances one tick and returns the resulting Sample, which is valid
// until the next Step (Clone to retain). It returns ErrSessionDone once
// the configured duration has elapsed, and ctx.Err() if the session's
// context has been canceled.
func (ss *Session) Step() (*Sample, error) {
	if ss.done {
		return nil, ErrSessionDone
	}
	if err := ss.ctx.Err(); err != nil {
		return nil, err
	}
	if ss.sim.Time() >= ss.duration {
		ss.done = true
		return nil, ErrSessionDone
	}
	measured := ss.sim.Time() >= 0 // the tick about to run starts now
	if err := ss.sim.Step(); err != nil {
		return nil, fmt.Errorf("coolsim: step at t=%v: %w", ss.sim.Time(), err)
	}
	return ss.smp.fill(ss.sim, measured), nil
}

// Done reports whether the session has run to completion.
func (ss *Session) Done() bool { return ss.done }

// TotalTicks returns how many Steps the full session will take (warm-up
// plus measured duration at the base tick) — the expected-frame budget
// for stream ETAs.
func (ss *Session) TotalTicks() int {
	tick := float64(ss.sim.Cfg.Tick)
	if tick <= 0 {
		return 0
	}
	return int(float64(ss.duration+ss.sim.Cfg.Warmup)/tick + 0.5)
}

// Time returns the simulation clock in seconds (negative during warm-up).
func (ss *Session) Time() float64 { return float64(ss.sim.Time()) }

// Report finalizes the metrics collected so far. It is valid at any
// point of the session (typically after ErrSessionDone).
func (ss *Session) Report() *Report {
	return newReport(ss.sc, ss.sim.Result())
}

// drain runs the session to completion on behalf of Run, feeding the
// observer if one is registered.
func (ss *Session) drain() (*Report, error) {
	for {
		smp, err := ss.Step()
		if err != nil {
			if errors.Is(err, ErrSessionDone) {
				return ss.Report(), nil
			}
			return nil, err
		}
		if ss.cfg.observer != nil {
			ss.cfg.observer(smp)
		}
	}
}
