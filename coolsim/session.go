package coolsim

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/units"
)

// Sample is the per-tick observation a Session yields: the state the
// batch-only Report hides. Fields are plain and JSON-tagged; Sample is
// the NDJSON line format of cmd/coolserved's stream endpoint.
//
// The Session reuses one Sample (including its slices) across ticks to
// keep the streaming path allocation-free — callers that retain a Sample
// beyond the next Step must Clone it.
type Sample struct {
	// Time in seconds since measurement start: the simulation clock at
	// the end of the tick (at or below zero while warming up).
	Time float64 `json:"t_s"`
	// Measured reports whether this tick counts toward the Report's
	// measurement window (ticks that start at t ≥ 0). The number of
	// Measured samples in a full session equals Report.Samples.
	Measured bool `json:"measured"`
	// TmaxC is the maximum die temperature.
	TmaxC float64 `json:"tmax_c"`
	// LayerMaxC / LayerMeanC are per-stack-layer hottest-sensor and mean
	// temperatures, index 0 the bottom layer.
	LayerMaxC  []float64 `json:"layer_max_c"`
	LayerMeanC []float64 `json:"layer_mean_c"`
	// Setting is the pump setting actually delivering flow (after
	// transition delays and faults); -1 for air-cooled runs.
	Setting int `json:"setting"`
	// FlowMLMin is the delivered per-cavity flow in ml/min.
	FlowMLMin float64 `json:"flow_mlmin"`
	// ChipPowerW and PumpPowerW are the powers drawn during the tick.
	ChipPowerW float64 `json:"chip_w"`
	PumpPowerW float64 `json:"pump_w"`
	// Migrations is the cumulative thread migration count.
	Migrations int64 `json:"migrations"`
	// Refits is the cumulative ARMA predictor reconstruction count.
	Refits int `json:"refits"`
}

// Clone returns a deep copy safe to retain across Steps.
func (s *Sample) Clone() Sample {
	c := *s
	c.LayerMaxC = append([]float64(nil), s.LayerMaxC...)
	c.LayerMeanC = append([]float64(nil), s.LayerMeanC...)
	return c
}

// Session is an incrementally-executed scenario: each Step advances one
// 100 ms tick and yields a Sample, until ErrSessionDone. Use it to watch
// a run in flight (live dashboards, the coolserved stream endpoint, custom
// stopping rules) where Run only reports at the end.
//
// A Session is not safe for concurrent use.
type Session struct {
	ctx       context.Context
	sc        Scenario
	cfg       config
	sim       *sim.Sim
	duration  units.Second
	sample    Sample
	layerMax  []units.Celsius
	layerMean []units.Celsius
	done      bool
}

// NewSession assembles a scenario for incremental execution. The context
// is checked on every Step: canceling it makes Step (and any Run driving
// the session) return ctx.Err() within one tick.
func NewSession(ctx context.Context, sc Scenario, opts ...Option) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := buildConfig(opts)
	simCfg, err := sc.simConfig(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.pcache != nil {
		if err := cfg.pcache.attach(&simCfg); err != nil {
			return nil, err
		}
	}
	s, err := sim.New(ctx, simCfg)
	if err != nil {
		return nil, err
	}
	n := s.NumLayers()
	ss := &Session{
		ctx:       ctx,
		sc:        sc,
		cfg:       cfg,
		sim:       s,
		duration:  simCfg.Duration,
		layerMax:  make([]units.Celsius, n),
		layerMean: make([]units.Celsius, n),
	}
	ss.sample.LayerMaxC = make([]float64, n)
	ss.sample.LayerMeanC = make([]float64, n)
	return ss, nil
}

// Step advances one tick and returns the resulting Sample, which is valid
// until the next Step (Clone to retain). It returns ErrSessionDone once
// the configured duration has elapsed, and ctx.Err() if the session's
// context has been canceled.
func (ss *Session) Step() (*Sample, error) {
	if ss.done {
		return nil, ErrSessionDone
	}
	if err := ss.ctx.Err(); err != nil {
		return nil, err
	}
	if ss.sim.Time() >= ss.duration {
		ss.done = true
		return nil, ErrSessionDone
	}
	measured := ss.sim.Time() >= 0 // the tick about to run starts now
	if err := ss.sim.Step(); err != nil {
		return nil, fmt.Errorf("coolsim: step at t=%v: %w", ss.sim.Time(), err)
	}
	ss.fill(measured)
	return &ss.sample, nil
}

// fill refreshes the reused Sample from the simulator state. It must not
// allocate: BenchmarkSessionStep holds the streaming path to the same
// 0 B/op overhead budget as the underlying sim tick.
func (ss *Session) fill(measured bool) {
	s := ss.sim
	ss.sample.Time = float64(s.Time())
	ss.sample.Measured = measured
	ss.sample.TmaxC = float64(s.Tmax())
	// Lengths were fixed at construction; the error path is unreachable.
	_ = s.LayerTempsInto(ss.layerMax, ss.layerMean)
	for i := range ss.layerMax {
		ss.sample.LayerMaxC[i] = float64(ss.layerMax[i])
		ss.sample.LayerMeanC[i] = float64(ss.layerMean[i])
	}
	ss.sample.Setting = s.DeliveredSetting()
	ss.sample.FlowMLMin = s.DeliveredFlow().MilliLitersPerMinute()
	ss.sample.ChipPowerW = float64(s.ChipPower())
	ss.sample.PumpPowerW = float64(s.PumpPower())
	ss.sample.Migrations = s.Migrations()
	ss.sample.Refits = s.Refits()
}

// Done reports whether the session has run to completion.
func (ss *Session) Done() bool { return ss.done }

// Time returns the simulation clock in seconds (negative during warm-up).
func (ss *Session) Time() float64 { return float64(ss.sim.Time()) }

// Report finalizes the metrics collected so far. It is valid at any
// point of the session (typically after ErrSessionDone).
func (ss *Session) Report() *Report {
	return newReport(ss.sc, ss.sim.Result())
}

// drain runs the session to completion on behalf of Run, feeding the
// observer if one is registered.
func (ss *Session) drain() (*Report, error) {
	for {
		smp, err := ss.Step()
		if err != nil {
			if errors.Is(err, ErrSessionDone) {
				return ss.Report(), nil
			}
			return nil, err
		}
		if ss.cfg.observer != nil {
			ss.cfg.observer(smp)
		}
	}
}
