package coolsim_test

import (
	"context"
	"errors"
	"fmt"

	"repro/coolsim"
)

// A small scenario keeps the examples fast: a coarse 12×10 thermal grid
// and a short measured window.
func exampleScenario() coolsim.Scenario {
	sc := coolsim.DefaultScenario() // 2-layer, var cooling, TALB, Web-med
	sc.Duration = 3
	sc.Warmup = 1
	sc.GridNX, sc.GridNY = 12, 10
	return sc
}

// Run executes one scenario as a batch and returns the aggregate report.
func ExampleRun() {
	report, err := coolsim.Run(context.Background(), exampleScenario())
	if err != nil {
		fmt.Println("run failed:", err)
		return
	}
	fmt.Println("measured ticks:", report.Samples)
	fmt.Println("held below 85°C:", report.HotSpotPct == 0)
	// Output:
	// measured ticks: 30
	// held below 85°C: true
}

// RunMany fans scenarios over a worker pool; reports come back in input
// order and are identical to serial runs for any worker count.
func ExampleRunMany() {
	base := exampleScenario()
	var scs []coolsim.Scenario
	for _, wl := range []string{"Web-med", "gzip"} {
		sc := base
		sc.Workload = wl
		scs = append(scs, sc)
	}
	reports, err := coolsim.RunMany(context.Background(), scs, coolsim.WithWorkers(2))
	if err != nil {
		fmt.Println("run failed:", err)
		return
	}
	for _, r := range reports {
		fmt.Println(r.Scenario.Workload, "completed:", r.Completed > 0)
	}
	// Output:
	// Web-med completed: true
	// gzip completed: true
}

// NewSession executes a scenario tick by tick, yielding one Sample per
// 100 ms of simulated time — the streaming view batch Run hides.
func ExampleNewSession() {
	ss, err := coolsim.NewSession(context.Background(), exampleScenario())
	if err != nil {
		fmt.Println("session failed:", err)
		return
	}
	ticks, measured := 0, 0
	for {
		sample, err := ss.Step()
		if errors.Is(err, coolsim.ErrSessionDone) {
			break
		}
		if err != nil {
			fmt.Println("step failed:", err)
			return
		}
		ticks++
		if sample.Measured {
			measured++
		}
	}
	fmt.Println("ticks:", ticks)
	fmt.Println("measured:", measured)
	fmt.Println("report samples match:", ss.Report().Samples == measured)
	// Output:
	// ticks: 40
	// measured: 30
	// report samples match: true
}

// WithObserver streams every tick of a batch Run without giving up the
// one-call API.
func ExampleWithObserver() {
	peak := 0.0
	report, err := coolsim.Run(context.Background(), exampleScenario(),
		coolsim.WithObserver(func(s *coolsim.Sample) {
			if s.Measured && s.TmaxC > peak {
				peak = s.TmaxC
			}
		}))
	if err != nil {
		fmt.Println("run failed:", err)
		return
	}
	fmt.Println("observer peak matches report:", peak == report.MaxTempC)
	// Output:
	// observer peak matches report: true
}

// Typed errors let callers dispatch on what was wrong with a scenario.
func ExampleScenario_Validate() {
	sc := exampleScenario()
	sc.Workload = "seti@home"
	err := sc.Validate()
	fmt.Println(errors.Is(err, coolsim.ErrUnknownWorkload))
	// Output:
	// true
}
