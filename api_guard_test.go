package repro

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestPublicSurfaceDoesNotImportInternal is the regression guard this
// API exists for: everything that models downstream usage — the examples
// and the public package's godoc examples / external tests (package
// coolsim_test) — must work against `repro/coolsim` alone, never
// `repro/internal/...`. (Before the public package existed, every example
// imported internal packages, so none of them compiled outside this
// module.) The coolsim implementation itself is the wrapping layer and
// may import internal packages.
func TestPublicSurfaceDoesNotImportInternal(t *testing.T) {
	roots := []string{"examples", "coolsim"}
	fset := token.NewFileSet()
	checked := 0
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			if f.Name.Name == "coolsim" {
				// The public package's own implementation (and white-box
				// tests): the one place wrapping internal is the job.
				return nil
			}
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					return err
				}
				if p == "repro/internal" || strings.HasPrefix(p, "repro/internal/") {
					t.Errorf("%s imports %s — downstream-facing code must only use repro/coolsim",
						path, p)
				}
			}
			checked++
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", root, err)
		}
	}
	// Sanity: the guard must actually be looking at files (5 examples
	// plus at least the coolsim godoc example file).
	if checked < 6 {
		t.Fatalf("guard only parsed %d files; did examples/ or coolsim/ move?", checked)
	}
}
